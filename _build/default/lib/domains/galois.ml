(* Galois connections (paper section 3): a pair (alpha, gamma) between a
   concrete powerset and an abstract lattice.  We represent gamma only by a
   membership test, which is all the soundness tests need: the connection
   condition specializes to  forall c in C: c in gamma(alpha{c}). *)

type ('c, 'a) t = {
  name : string;
  alpha : 'c list -> 'a; (* abstraction of a finite concrete sample *)
  gamma_mem : 'a -> 'c -> bool; (* membership in the concretization *)
}

let make ~name ~alpha ~gamma_mem = { name; alpha; gamma_mem }

(* Soundness of the connection on a sample: every sampled concrete value is
   in the concretization of the abstraction of the sample. *)
let sound_on_sample conn sample =
  let a = conn.alpha sample in
  List.for_all (fun c -> conn.gamma_mem a c) sample

(* Soundness of an abstract operator w.r.t. a concrete operator, checked on
   samples: f#(alpha xs, alpha ys) must concretize every f(x, y). *)
let operator_sound_on conn ~abstract_op ~concrete_op xs ys =
  let ax = conn.alpha xs and ay = conn.alpha ys in
  let result = abstract_op ax ay in
  List.for_all
    (fun x -> List.for_all (fun y -> conn.gamma_mem result (concrete_op x y)) ys)
    xs

(* Ready-made connections for the numeric domains. *)
let interval : (int, Interval.t) t =
  make ~name:"interval"
    ~alpha:(fun cs ->
      List.fold_left (fun acc c -> Interval.join acc (Interval.of_int c)) Interval.bottom cs)
    ~gamma_mem:Interval.contains

let sign : (int, Sign.t) t =
  make ~name:"sign"
    ~alpha:(fun cs ->
      List.fold_left (fun acc c -> Sign.join acc (Sign.of_int c)) Sign.bottom cs)
    ~gamma_mem:Sign.contains

let parity : (int, Parity.t) t =
  make ~name:"parity"
    ~alpha:(fun cs ->
      List.fold_left (fun acc c -> Parity.join acc (Parity.of_int c)) Parity.bottom cs)
    ~gamma_mem:Parity.contains

let const : (int, Const.t) t =
  make ~name:"const"
    ~alpha:(fun cs ->
      List.fold_left (fun acc c -> Const.join acc (Const.of_int c)) Const.bottom cs)
    ~gamma_mem:Const.contains

let int_parity : (int, Int_parity.t) t =
  make ~name:"interval×parity"
    ~alpha:(fun cs ->
      List.fold_left
        (fun acc c -> Int_parity.join acc (Int_parity.of_int c))
        Int_parity.bottom cs)
    ~gamma_mem:Int_parity.contains
