(* The parity domain {⊥, Even, Odd, ⊤}: a second finite-height NUMERIC
   instance, handy for cross-domain tests of the abstract interpreter. *)

type t = Bot | Even | Odd | Top

let bottom = Bot
let top = Top
let is_bottom = function Bot -> true | Even | Odd | Top -> false
let is_top = function Top -> true | Even | Odd | Bot -> false
let of_int n = if n mod 2 = 0 then Even else Odd
let equal (a : t) (b : t) = a = b

let leq a b =
  match (a, b) with
  | Bot, _ | _, Top -> true
  | Even, Even | Odd, Odd -> true
  | (Even | Odd | Top), _ -> false

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Even, Even -> Even
  | Odd, Odd -> Odd
  | Even, Odd | Odd, Even -> Top

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Bot, _ | _, Bot -> Bot
  | Even, Even -> Even
  | Odd, Odd -> Odd
  | Even, Odd | Odd, Even -> Bot

let widen = join

let lift2 f a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | x, y -> f x y

let add =
  lift2 (fun a b ->
      match (a, b) with
      | Even, Even | Odd, Odd -> Even
      | _ -> Odd)

let sub = add (* same parity table *)

let mul =
  lift2 (fun a b ->
      match (a, b) with Odd, Odd -> Odd | _ -> Even)

(* Integer division does not preserve parity. *)
let div a b =
  match (a, b) with Bot, _ | _, Bot -> Bot | _ -> Top

let neg v = v
let contains v n = leq (of_int n) v

let cmp_eq a b =
  match (a, b) with
  | Bot, _ | _, Bot -> None
  | Even, Odd | Odd, Even -> Some false
  | _ -> None

let cmp_lt _ _ = None
let cmp_le _ _ = None
let assume_eq = meet
let assume_ne a _ = a (* parity cannot exclude a single integer *)
let assume_lt a _ = a
let assume_le a _ = a
let assume_gt a _ = a
let assume_ge a _ = a

let pp ppf v =
  Format.pp_print_string ppf
    (match v with Bot -> "⊥" | Even -> "even" | Odd -> "odd" | Top -> "⊤")
