(* Product lattices (componentwise order).  The abstract value of the
   analyzer is a quadruple; building it from binary products keeps the
   lattice laws compositional and testable. *)

module Pair (A : Lattice.LATTICE) (B : Lattice.LATTICE) = struct
  type t = A.t * B.t

  let bottom = (A.bottom, B.bottom)
  let is_bottom (a, b) = A.is_bottom a && B.is_bottom b
  let leq (a1, b1) (a2, b2) = A.leq a1 a2 && B.leq b1 b2
  let join (a1, b1) (a2, b2) = (A.join a1 a2, B.join b1 b2)
  let equal (a1, b1) (a2, b2) = A.equal a1 a2 && B.equal b1 b2

  let pp ppf (a, b) = Format.fprintf ppf "(%a, %a)" A.pp a B.pp b
end

module PairW (A : Lattice.WIDENING) (B : Lattice.WIDENING) = struct
  include Pair (A) (B)

  let widen (a1, b1) (a2, b2) = (A.widen a1 a2, B.widen b1 b2)
end
