(* Finite powerset lattice over an ordered carrier, ordered by inclusion.
   Used for points-to sets, function sets, access sets, and dependence
   pairs throughout the analyzer. *)

module Make (X : Lattice.ORDERED) = struct
  module S = Set.Make (struct
    type t = X.t

    let compare = X.compare
  end)

  type t = S.t

  let bottom = S.empty
  let is_bottom = S.is_empty
  let singleton = S.singleton
  let of_list = S.of_list
  let elements = S.elements
  let mem = S.mem
  let add = S.add
  let cardinal = S.cardinal
  let fold = S.fold
  let iter = S.iter
  let exists = S.exists
  let for_all = S.for_all
  let filter = S.filter
  let union = S.union
  let inter = S.inter
  let diff = S.diff
  let subset = S.subset
  let equal = S.equal
  let leq = S.subset
  let join = S.union
  let meet = S.inter
  let widen = S.union (* finite carriers in practice; join suffices *)

  let map f s = S.fold (fun x acc -> S.add (f x) acc) s S.empty

  let pp ppf s =
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         X.pp)
      (S.elements s)
end
