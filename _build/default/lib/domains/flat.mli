(** Flat lattice over an arbitrary ordered carrier — the classic
    constant-propagation shape: bottom, one incomparable layer of atoms,
    top.  {!Const} instantiates it at [int]. *)

type 'a t = Bot | Atom of 'a | Top

module Make (X : Lattice.ORDERED) : sig
  type nonrec t = X.t t

  val bottom : t
  val top : t
  val atom : X.t -> t
  val is_bottom : t -> bool
  val is_top : t -> bool
  val equal : t -> t -> bool
  val leq : t -> t -> bool
  val join : t -> t -> t
  val meet : t -> t -> t

  val widen : t -> t -> t
  (** Finite height: plain join. *)

  val pp : Format.formatter -> t -> unit
  val to_option : t -> X.t option
end
