(** Finite powerset lattice over an ordered carrier, ordered by
    inclusion — points-to sets, function-value sets, access sets. *)

module Make (X : Lattice.ORDERED) : sig
  type t

  val bottom : t
  val is_bottom : t -> bool
  val singleton : X.t -> t
  val of_list : X.t list -> t
  val elements : t -> X.t list
  val mem : X.t -> t -> bool
  val add : X.t -> t -> t
  val cardinal : t -> int
  val fold : (X.t -> 'a -> 'a) -> t -> 'a -> 'a
  val iter : (X.t -> unit) -> t -> unit
  val exists : (X.t -> bool) -> t -> bool
  val for_all : (X.t -> bool) -> t -> bool
  val filter : (X.t -> bool) -> t -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val subset : t -> t -> bool
  val equal : t -> t -> bool
  val leq : t -> t -> bool
  val join : t -> t -> t
  val meet : t -> t -> t

  val widen : t -> t -> t
  (** Carriers are finite in practice: join. *)

  val map : (X.t -> X.t) -> t -> t
  val pp : Format.formatter -> t -> unit
end
