(* Reduced product of intervals and parity: a further NUMERIC instance
   demonstrating the paper's point that each choice of abstract domain
   yields a different analysis for free.  The reduction tightens interval
   bounds to the parity (e.g. [1,4] ∧ even = [2,4]) and kills values whose
   components are contradictory. *)

type t = { itv : Interval.t; par : Parity.t }

let reduce (v : t) : t =
  if Interval.is_bottom v.itv || Parity.is_bottom v.par then
    { itv = Interval.bottom; par = Parity.bottom }
  else
    match v.par with
    | Parity.Top | Parity.Bot -> v
    | Parity.Even | Parity.Odd -> (
        let parity_matches n =
          match v.par with
          | Parity.Even -> n mod 2 = 0
          | Parity.Odd -> n mod 2 <> 0
          | _ -> true
        in
        (* tighten finite bounds inward to the parity *)
        match v.itv with
        | Interval.Empty -> { itv = Interval.bottom; par = Parity.bottom }
        | Interval.Range (lo, hi) ->
            let lo' =
              match lo with
              | Interval.Fin n when not (parity_matches n) -> Interval.Fin (n + 1)
              | b -> b
            in
            let hi' =
              match hi with
              | Interval.Fin n when not (parity_matches n) -> Interval.Fin (n - 1)
              | b -> b
            in
            let itv = Interval.of_bounds lo' hi' in
            if Interval.is_bottom itv then
              { itv = Interval.bottom; par = Parity.bottom }
            else { itv; par = v.par })

let make itv par = reduce { itv; par }
let bottom = { itv = Interval.bottom; par = Parity.bottom }
let top = { itv = Interval.top; par = Parity.top }
let is_bottom v = Interval.is_bottom v.itv
let is_top v = Interval.is_top v.itv && Parity.is_top v.par
let of_int n = { itv = Interval.of_int n; par = Parity.of_int n }

let equal a b = Interval.equal a.itv b.itv && Parity.equal a.par b.par
let leq a b = Interval.leq a.itv b.itv && Parity.leq a.par b.par
let join a b = make (Interval.join a.itv b.itv) (Parity.join a.par b.par)
let meet a b = make (Interval.meet a.itv b.itv) (Parity.meet a.par b.par)
let widen a b = make (Interval.widen a.itv b.itv) (Parity.widen a.par b.par)

let lift2 fi fp a b = make (fi a.itv b.itv) (fp a.par b.par)
let add = lift2 Interval.add Parity.add
let sub = lift2 Interval.sub Parity.sub
let mul = lift2 Interval.mul Parity.mul
let div = lift2 Interval.div Parity.div
let neg v = make (Interval.neg v.itv) (Parity.neg v.par)

let contains v n = Interval.contains v.itv n && Parity.contains v.par n

(* Comparisons: the interval decides; parity refines equality. *)
let cmp_eq a b =
  match Interval.cmp_eq a.itv b.itv with
  | Some r -> Some r
  | None -> Parity.cmp_eq a.par b.par

let cmp_lt a b = Interval.cmp_lt a.itv b.itv
let cmp_le a b = Interval.cmp_le a.itv b.itv

let assume_eq a b = meet a b
let assume_ne a b = make (Interval.assume_ne a.itv b.itv) a.par
let assume_lt a b = make (Interval.assume_lt a.itv b.itv) a.par
let assume_le a b = make (Interval.assume_le a.itv b.itv) a.par
let assume_gt a b = make (Interval.assume_gt a.itv b.itv) a.par
let assume_ge a b = make (Interval.assume_ge a.itv b.itv) a.par

let pp ppf v =
  if is_bottom v then Format.pp_print_string ppf "⊥"
  else Format.fprintf ppf "%a∧%a" Interval.pp v.itv Parity.pp v.par
