(* Constant propagation: the flat lattice over int, packaged as a NUMERIC
   domain so the abstract interpreter can be instantiated with it. *)

module F = Flat.Make (struct
  type t = int

  let compare = Int.compare
  let equal = Int.equal
  let pp = Format.pp_print_int
end)

type t = F.t

let bottom = F.bottom
let top = F.top
let is_bottom = F.is_bottom
let is_top = F.is_top
let of_int n = F.atom n
let equal = F.equal
let leq = F.leq
let join = F.join
let meet = F.meet
let widen = F.widen
let pp = F.pp
let to_option = F.to_option

(* Strict lifting of a binary concrete operation. *)
let lift2 f a b =
  match (a, b) with
  | Flat.Bot, _ | _, Flat.Bot -> Flat.Bot
  | Flat.Top, _ | _, Flat.Top -> Flat.Top
  | Flat.Atom x, Flat.Atom y -> f x y

let add = lift2 (fun x y -> Flat.Atom (x + y))
let sub = lift2 (fun x y -> Flat.Atom (x - y))
let mul = lift2 (fun x y -> Flat.Atom (x * y))

let div =
  lift2 (fun x y -> if y = 0 then Flat.Bot else Flat.Atom (x / y))

let neg = function
  | Flat.Bot -> Flat.Bot
  | Flat.Top -> Flat.Top
  | Flat.Atom x -> Flat.Atom (-x)

let contains v n =
  match v with
  | Flat.Bot -> false
  | Flat.Top -> true
  | Flat.Atom x -> x = n

let decide rel (a : t) (b : t) =
  match (a, b) with
  | Flat.Atom x, Flat.Atom y -> Some (rel x y)
  | (Flat.Bot | Flat.Top | Flat.Atom _), _ -> None

let cmp_eq = decide ( = )
let cmp_lt = decide ( < )
let cmp_le = decide ( <= )
let assume_eq = meet

let assume_ne a b =
  match (a, b) with
  | Flat.Atom x, Flat.Atom y when x = y -> Flat.Bot
  | _ -> a

(* Non-equality relations cannot refine a flat element except to kill it. *)
let assume_rel rel (a : t) (b : t) =
  match (a, b) with
  | Flat.Atom x, Flat.Atom y when not (rel x y) -> Flat.Bot
  | _ -> a

let assume_lt = assume_rel ( < )
let assume_le = assume_rel ( <= )
let assume_gt = assume_rel ( > )
let assume_ge = assume_rel ( >= )
