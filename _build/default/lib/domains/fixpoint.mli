(** Generic worklist fixpoint engine over a finite node set with lattice
    annotations, with join-until-delay-then-widen.  Used by the
    flow-insensitive helpers and tests; the abstract state-space
    explorer has its own specialized loop. *)

module type PROBLEM = sig
  module L : Lattice.LATTICE

  type node

  val compare_node : node -> node -> int
  val nodes : node list

  val init : node -> L.t
  (** Initial annotation. *)

  val transfer : lookup:(node -> L.t) -> node -> L.t
  (** Recompute a node's annotation; [lookup] reads the current map. *)

  val dependents : node -> node list
  (** Nodes to re-examine when this node's annotation grows. *)

  val widening_delay : int
  (** Updates of one node before joins become widenings; use [max_int]
      for finite-height lattices. *)

  val widen : L.t -> L.t -> L.t
end

module Make (P : PROBLEM) : sig
  type solution

  val lookup : solution -> P.node -> P.L.t
  val solve : unit -> solution
end
