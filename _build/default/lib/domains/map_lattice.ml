(* Pointwise map lattice: keys -> L, with absent keys meaning bottom.
   This is the shape of abstract stores and environments.  [join] and
   [widen] are pointwise; [leq] checks pointwise inclusion. *)

module Make (K : Lattice.ORDERED) (L : Lattice.LATTICE) = struct
  module M = Map.Make (struct
    type t = K.t

    let compare = K.compare
  end)

  type t = L.t M.t

  let bottom = M.empty
  let is_bottom = M.is_empty

  (* Keep the map normalized: never store bottom images. *)
  let set k v m = if L.is_bottom v then M.remove k m else M.add k v m
  let find k m = match M.find_opt k m with Some v -> v | None -> L.bottom
  let mem = M.mem
  let remove = M.remove
  let bindings = M.bindings
  let fold = M.fold
  let iter = M.iter
  let cardinal = M.cardinal
  let keys m = List.map fst (M.bindings m)

  let update k f m = set k (f (find k m)) m

  let leq a b = M.for_all (fun k v -> L.leq v (find k b)) a

  let merge_with combine a b =
    M.merge
      (fun _ va vb ->
        let v =
          combine
            (Option.value va ~default:L.bottom)
            (Option.value vb ~default:L.bottom)
        in
        if L.is_bottom v then None else Some v)
      a b

  let join = merge_with L.join
  let equal a b = M.equal L.equal a b

  let widen_with widen_elt a b = merge_with widen_elt a b

  let pp ppf m =
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list
         ~pp_sep:Format.pp_print_cut
         (fun ppf (k, v) -> Format.fprintf ppf "%a ↦ %a" K.pp k L.pp v))
      (M.bindings m)
end
