(* Flat lattice over an arbitrary ordered carrier:

        Top
      / | | \
     a  b c  ...
      \ | | /
        Bot

   The classic constant-propagation shape; [Const] below instantiates it
   at [int]. *)

type 'a t = Bot | Atom of 'a | Top

module Make (X : Lattice.ORDERED) = struct
  type nonrec t = X.t t

  let bottom = Bot
  let top = Top
  let atom x = Atom x
  let is_bottom = function Bot -> true | Atom _ | Top -> false
  let is_top = function Top -> true | Atom _ | Bot -> false

  let equal a b =
    match (a, b) with
    | Bot, Bot | Top, Top -> true
    | Atom x, Atom y -> X.equal x y
    | (Bot | Atom _ | Top), _ -> false

  let leq a b =
    match (a, b) with
    | Bot, _ | _, Top -> true
    | Atom x, Atom y -> X.equal x y
    | (Atom _ | Top), Bot | Top, Atom _ -> false

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Top, _ | _, Top -> Top
    | Atom x, Atom y -> if X.equal x y then a else Top

  let meet a b =
    match (a, b) with
    | Top, x | x, Top -> x
    | Bot, _ | _, Bot -> Bot
    | Atom x, Atom y -> if X.equal x y then a else Bot

  (* Finite height: widening is plain join. *)
  let widen = join

  let pp ppf = function
    | Bot -> Format.pp_print_string ppf "⊥"
    | Top -> Format.pp_print_string ppf "⊤"
    | Atom x -> X.pp ppf x

  let to_option = function Atom x -> Some x | Bot | Top -> None
end
