(** Three-valued booleans: the flat lattice over [{true, false}].  The
    abstract machine uses [may_be_true]/[may_be_false] to decide which
    branch successors an abstract conditional generates. *)

type t = Bot | True | False | Either

val bottom : t
val top : t
val of_bool : bool -> t
val is_bottom : t -> bool
val is_top : t -> bool
val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t
val widen : t -> t -> t

val may_be_true : t -> bool
val may_be_false : t -> bool

(** Kleene connectives (strict in [Bot]). *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t

val of_option : bool option -> t
(** [None] is [Either]. *)

val pp : Format.formatter -> t -> unit
