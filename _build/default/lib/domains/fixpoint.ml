(* Generic worklist fixpoint engine over a finite set of nodes with lattice
   annotations.  Used by the flow-insensitive helpers (call-graph may-access,
   critical-variable inference) and by tests; the abstract state-space
   explorer has its own specialized loop (Absint.Aexplore). *)

module type PROBLEM = sig
  module L : Lattice.LATTICE

  type node

  val compare_node : node -> node -> int
  val nodes : node list

  (* Initial annotation of a node. *)
  val init : node -> L.t

  (* [transfer n v] recomputes node [n]'s annotation from annotation map
     lookups; [lookup] provides the current annotation of any node. *)
  val transfer : lookup:(node -> L.t) -> node -> L.t

  (* Successors to re-examine when [n]'s annotation grows. *)
  val dependents : node -> node list

  (* After this many updates of one node, switch from join to widening
     (use [max_int] for finite-height lattices). *)
  val widening_delay : int
  val widen : L.t -> L.t -> L.t
end

module Make (P : PROBLEM) = struct
  module NM = Map.Make (struct
    type t = P.node

    let compare = P.compare_node
  end)

  type solution = P.L.t NM.t

  let lookup sol n =
    match NM.find_opt n sol with Some v -> v | None -> P.L.bottom

  let solve () : solution =
    let sol = ref NM.empty in
    let counts = ref NM.empty in
    List.iter (fun n -> sol := NM.add n (P.init n) !sol) P.nodes;
    let queue = Queue.create () in
    let queued = Hashtbl.create 64 in
    let enqueue n =
      if not (Hashtbl.mem queued n) then begin
        Hashtbl.add queued n ();
        Queue.add n queue
      end
    in
    List.iter enqueue P.nodes;
    while not (Queue.is_empty queue) do
      let n = Queue.pop queue in
      Hashtbl.remove queued n;
      let old_v = lookup !sol n in
      let new_v = P.transfer ~lookup:(lookup !sol) n in
      let count = match NM.find_opt n !counts with Some c -> c | None -> 0 in
      let next_v =
        if count >= P.widening_delay then P.widen old_v new_v
        else P.L.join old_v new_v
      in
      if not (P.L.leq next_v old_v) then begin
        sol := NM.add n next_v !sol;
        counts := NM.add n (count + 1) !counts;
        List.iter enqueue (P.dependents n)
      end
    done;
    !sol
end
