(** Product lattices with the componentwise order. *)

module Pair (A : Lattice.LATTICE) (B : Lattice.LATTICE) : sig
  type t = A.t * B.t

  val bottom : t
  val is_bottom : t -> bool
  val leq : t -> t -> bool
  val join : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** As {!Pair}, with componentwise widening. *)
module PairW (A : Lattice.WIDENING) (B : Lattice.WIDENING) : sig
  type t = A.t * B.t

  val bottom : t
  val is_bottom : t -> bool
  val leq : t -> t -> bool
  val join : t -> t -> t
  val equal : t -> t -> bool
  val widen : t -> t -> t
  val pp : Format.formatter -> t -> unit
end
