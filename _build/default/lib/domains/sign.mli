(** The sign domain: the powerset of [{-, 0, +}] ordered by inclusion.
    Satisfies {!Lattice.NUMERIC}. *)

type t = { neg : bool; zero : bool; pos : bool }

val bottom : t
val top : t
val is_bottom : t -> bool
val is_top : t -> bool
val of_int : int -> t
val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t
val widen : t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Division by zero halts the concrete program: the zero divisor
    contributes bottom. *)

val contains : t -> int -> bool

(** Decisions only arise across sign classes (the domain cannot separate
    two values of the same sign). *)

val cmp_eq : t -> t -> bool option
val cmp_lt : t -> t -> bool option
val cmp_le : t -> t -> bool option

val assume_eq : t -> t -> t
val assume_ne : t -> t -> t
val assume_lt : t -> t -> t
val assume_le : t -> t -> t
val assume_gt : t -> t -> t
val assume_ge : t -> t -> t

val pp : Format.formatter -> t -> unit
