(** Galois connections (paper section 3), represented by an abstraction
    of finite samples and a concretization membership test — all the
    soundness properties of the qcheck suite need. *)

type ('c, 'a) t = {
  name : string;
  alpha : 'c list -> 'a;  (** abstraction of a finite concrete sample *)
  gamma_mem : 'a -> 'c -> bool;  (** membership in the concretization *)
}

val make :
  name:string ->
  alpha:('c list -> 'a) ->
  gamma_mem:('a -> 'c -> bool) ->
  ('c, 'a) t

val sound_on_sample : ('c, 'a) t -> 'c list -> bool
(** Every sampled value is in the concretization of the sample's
    abstraction: the connection condition on finite samples. *)

val operator_sound_on :
  ('c, 'a) t ->
  abstract_op:('a -> 'a -> 'a) ->
  concrete_op:('c -> 'c -> 'c) ->
  'c list ->
  'c list ->
  bool
(** [f#(alpha xs, alpha ys)] concretizes every [f x y]. *)

(** Ready-made connections for the numeric domains. *)

val interval : (int, Interval.t) t
val sign : (int, Sign.t) t
val parity : (int, Parity.t) t
val const : (int, Const.t) t
val int_parity : (int, Int_parity.t) t
