(* Core signatures for the abstract-interpretation substrate (paper section 3).

   A lattice here is a join-semilattice with bottom; [LATTICE_TOP] adds a top
   element and meet; [WIDENING] adds a widening operator for domains of
   infinite height (e.g. intervals).  All domains carry a pretty-printer so
   analysis results are directly reportable. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module type LATTICE = sig
  type t

  val bottom : t
  val is_bottom : t -> bool
  val leq : t -> t -> bool
  val join : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module type LATTICE_TOP = sig
  include LATTICE

  val top : t
  val is_top : t -> bool
  val meet : t -> t -> t
end

module type WIDENING = sig
  include LATTICE

  (* [widen old new_] must over-approximate [join old new_] and guarantee
     stabilization of any increasing chain. *)
  val widen : t -> t -> t
end

module type NUMERIC = sig
  (* Abstract numeric domain: the interface the abstract evaluator needs.
     [of_int] abstracts a literal; arithmetic over-approximates the concrete
     operation; [test_*] refine an abstract value under a branch guard and
     return [bottom] when the guard is infeasible. *)
  include WIDENING

  val top : t
  val is_top : t -> bool
  val meet : t -> t -> t
  val of_int : int -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t

  (* Three-valued comparison results: [Some true]/[Some false] when the
     comparison is decided for all concretizations, [None] otherwise. *)
  val cmp_eq : t -> t -> bool option
  val cmp_lt : t -> t -> bool option
  val cmp_le : t -> t -> bool option

  (* Refinements used by branch pruning: restrict the left value assuming
     the relation with the right value holds. *)
  val assume_eq : t -> t -> t
  val assume_ne : t -> t -> t
  val assume_lt : t -> t -> t
  val assume_le : t -> t -> t
  val assume_gt : t -> t -> t
  val assume_ge : t -> t -> t

  (* [contains v n] holds iff integer [n] is in the concretization of [v]. *)
  val contains : t -> int -> bool
end

(* Lift an equality-based semilattice check: default [is_bottom]. *)
let is_bottom_default ~equal ~bottom x = equal x bottom

(* Iterated join of a list of elements. *)
let join_list (type a) (module L : LATTICE with type t = a) (xs : a list) : a =
  List.fold_left L.join L.bottom xs
