lib/domains/bool3.ml: Format
