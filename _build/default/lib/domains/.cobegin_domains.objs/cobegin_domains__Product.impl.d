lib/domains/product.ml: Format Lattice
