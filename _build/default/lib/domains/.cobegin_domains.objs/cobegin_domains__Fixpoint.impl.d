lib/domains/fixpoint.ml: Hashtbl Lattice List Map Queue
