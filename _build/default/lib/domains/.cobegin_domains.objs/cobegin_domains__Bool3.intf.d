lib/domains/bool3.mli: Format
