lib/domains/sign.mli: Format
