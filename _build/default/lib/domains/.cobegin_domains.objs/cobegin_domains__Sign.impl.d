lib/domains/sign.ml: Format List
