lib/domains/int_parity.ml: Format Interval Parity
