lib/domains/galois.mli: Const Int_parity Interval Parity Sign
