lib/domains/flat.ml: Format Lattice
