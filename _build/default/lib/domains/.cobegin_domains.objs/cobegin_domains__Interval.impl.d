lib/domains/interval.ml: Format List
