lib/domains/map_lattice.ml: Format Lattice List Map Option
