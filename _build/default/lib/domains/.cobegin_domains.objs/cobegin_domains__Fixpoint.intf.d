lib/domains/fixpoint.mli: Lattice
