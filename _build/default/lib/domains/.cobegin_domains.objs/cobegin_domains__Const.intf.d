lib/domains/const.mli: Flat Format
