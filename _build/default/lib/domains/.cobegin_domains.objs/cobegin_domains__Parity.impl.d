lib/domains/parity.ml: Format
