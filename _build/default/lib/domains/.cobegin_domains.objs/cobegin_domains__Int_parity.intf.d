lib/domains/int_parity.mli: Format Interval Parity
