lib/domains/flat.mli: Format Lattice
