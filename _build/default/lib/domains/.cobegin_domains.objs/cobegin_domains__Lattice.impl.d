lib/domains/lattice.ml: Format List
