lib/domains/interval.mli: Format
