lib/domains/galois.ml: Const Int_parity Interval List Parity Sign
