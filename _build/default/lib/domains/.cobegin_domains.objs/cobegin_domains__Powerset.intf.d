lib/domains/powerset.mli: Format Lattice
