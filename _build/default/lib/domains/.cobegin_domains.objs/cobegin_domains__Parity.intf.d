lib/domains/parity.mli: Format
