lib/domains/map_lattice.mli: Format Lattice
