lib/domains/product.mli: Format Lattice
