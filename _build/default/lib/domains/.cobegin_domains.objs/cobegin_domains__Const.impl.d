lib/domains/const.ml: Flat Format Int
