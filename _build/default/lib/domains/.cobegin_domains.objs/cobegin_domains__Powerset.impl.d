lib/domains/powerset.ml: Format Lattice Set
