(** Constant propagation: the flat lattice over [int], packaged as a
    {!Lattice.NUMERIC} domain. *)

type t = int Flat.t

val bottom : t
val top : t
val is_bottom : t -> bool
val is_top : t -> bool
val of_int : int -> t
val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t
val widen : t -> t -> t
val pp : Format.formatter -> t -> unit
val to_option : t -> int option

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Constant division by zero is bottom (the concrete program halts). *)

val neg : t -> t
val contains : t -> int -> bool
val cmp_eq : t -> t -> bool option
val cmp_lt : t -> t -> bool option
val cmp_le : t -> t -> bool option
val assume_eq : t -> t -> t
val assume_ne : t -> t -> t
val assume_lt : t -> t -> t
val assume_le : t -> t -> t
val assume_gt : t -> t -> t
val assume_ge : t -> t -> t
