(* The sign domain: the powerset of {-, 0, +} ordered by inclusion.
   Encoded as a record of three flags; bottom = no flag, top = all flags. *)

type t = { neg : bool; zero : bool; pos : bool }

let bottom = { neg = false; zero = false; pos = false }
let top = { neg = true; zero = true; pos = true }
let is_bottom v = v = bottom
let is_top v = v = top
let of_int n = { neg = n < 0; zero = n = 0; pos = n > 0 }
let equal (a : t) (b : t) = a = b

let leq a b =
  ((not a.neg) || b.neg) && ((not a.zero) || b.zero) && ((not a.pos) || b.pos)

let join a b =
  { neg = a.neg || b.neg; zero = a.zero || b.zero; pos = a.pos || b.pos }

let meet a b =
  { neg = a.neg && b.neg; zero = a.zero && b.zero; pos = a.pos && b.pos }

let widen = join

(* Abstract transfer: join of per-sign-pair results. *)
let lift2 table a b =
  let signs_of v =
    (if v.neg then [ -1 ] else []) @ (if v.zero then [ 0 ] else [])
    @ if v.pos then [ 1 ] else []
  in
  List.fold_left
    (fun acc sa ->
      List.fold_left (fun acc sb -> join acc (table sa sb)) acc (signs_of b))
    bottom (signs_of a)

let add =
  lift2 (fun a b ->
      match (a, b) with
      | 0, 0 -> of_int 0
      | (1, 0 | 0, 1 | 1, 1) -> of_int 1
      | (-1, 0 | 0, -1 | -1, -1) -> of_int (-1)
      | _ -> top)

let neg v = { neg = v.pos; zero = v.zero; pos = v.neg }
let sub a b = add a (neg b)

let mul =
  lift2 (fun a b ->
      match a * b with 0 -> of_int 0 | p when p > 0 -> of_int 1 | _ -> of_int (-1))

let div =
  lift2 (fun a b ->
      if b = 0 then bottom (* concrete division by zero halts *)
      else if a = 0 then of_int 0
      else if a * b > 0 then join (of_int 0) (of_int 1)
      else join (of_int 0) (of_int (-1)))

let contains v n = leq (of_int n) v

(* Decision procedures: answer [Some _] only when the comparison holds (or
   fails) for every pair of concretizations.  Within one sign class the
   domain cannot separate values, so decisions only arise across classes. *)
let cmp_eq a b =
  if is_bottom a || is_bottom b then None
  else if is_bottom (meet a b) then Some false
  else if equal a (of_int 0) && equal b (of_int 0) then Some true
  else None

let subset_neg v = not (v.zero || v.pos) (* v ⊆ {-} *)
let subset_nonpos v = not v.pos (* v ⊆ {-,0} *)
let subset_pos v = not (v.neg || v.zero) (* v ⊆ {+} *)
let subset_nonneg v = not v.neg (* v ⊆ {0,+} *)

let cmp_lt a b =
  if is_bottom a || is_bottom b then None
  else if (subset_neg a && subset_nonneg b) || (subset_nonpos a && subset_pos b)
  then Some true
  else if subset_nonneg a && subset_nonpos b then Some false
  else None

let cmp_le a b =
  if is_bottom a || is_bottom b then None
  else if subset_nonpos a && subset_nonneg b then Some true
  else if (subset_pos a && subset_nonpos b) || (subset_nonneg a && subset_neg b)
  then Some false
  else None

(* Refinements: keep the signs of [a] compatible with the relation holding
   for at least one concretization of [b]. *)
let assume_eq = meet
let assume_ne a b = if equal b (of_int 0) then { a with zero = false } else a

let assume_lt a b =
  if is_bottom b then bottom
  else if b.pos then a (* some y can be arbitrarily large *)
  else if b.zero then meet a { neg = true; zero = false; pos = false }
  else (* b ⊆ {-} *) meet a { neg = true; zero = false; pos = false }

let assume_le a b =
  if is_bottom b then bottom
  else if b.pos then a
  else if b.zero then meet a { neg = true; zero = true; pos = false }
  else meet a { neg = true; zero = false; pos = false }

let assume_gt a b =
  if is_bottom b then bottom
  else if b.neg then a (* some y can be arbitrarily small *)
  else meet a { neg = false; zero = false; pos = true }

let assume_ge a b =
  if is_bottom b then bottom
  else if b.neg then a
  else if b.zero then meet a { neg = false; zero = true; pos = true }
  else meet a { neg = false; zero = false; pos = true }

let pp ppf v =
  if is_bottom v then Format.pp_print_string ppf "⊥"
  else if is_top v then Format.pp_print_string ppf "⊤"
  else
    Format.fprintf ppf "{%s%s%s}"
      (if v.neg then "-" else "")
      (if v.zero then "0" else "")
      (if v.pos then "+" else "")
