(** Recursive-descent parser for the cobegin language (grammar in the
    implementation header and docs/LANGUAGE.md).  Statement labels are
    allocated densely from 1 in parse order.  Calls are statements, never
    sub-expressions — one statement is one atomic action. *)

exception Error of string * Lexer.pos

val parse_string : string -> Ast.program
(** @raise Error with a source position on syntax errors. *)

val parse_file : string -> Ast.program
(** @raise Sys_error when the file cannot be read. *)

val pp_error : Format.formatter -> string * Lexer.pos -> unit
