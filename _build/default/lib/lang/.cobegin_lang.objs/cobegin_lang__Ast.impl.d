lib/lang/ast.ml: List Option Set String
