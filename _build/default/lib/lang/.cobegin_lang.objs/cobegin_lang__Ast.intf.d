lib/lang/ast.mli: Set
