lib/lang/access.ml: Ast Format Hashtbl List Option String
