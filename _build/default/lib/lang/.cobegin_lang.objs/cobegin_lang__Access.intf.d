lib/lang/access.mli: Ast Format StringSet
