lib/lang/check.ml: Ast Format Hashtbl List Option
