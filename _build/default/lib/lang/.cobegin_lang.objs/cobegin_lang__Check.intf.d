lib/lang/check.mli: Ast Format
