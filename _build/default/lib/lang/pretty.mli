(** Pretty-printer producing concrete syntax that reparses to the same
    AST modulo labels (a qcheck property of the test suite).  Printing
    respects the parser's precedence and associativity, inserting
    parentheses exactly where reparsing would otherwise differ. *)

open Ast

val unop_str : unop -> string
val binop_str : binop -> string

val pp_expr : Format.formatter -> expr -> unit
val pp_lvalue : Format.formatter -> lvalue -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_proc : Format.formatter -> proc -> unit
val pp_program : Format.formatter -> program -> unit

val program_to_string : program -> string
val stmt_to_string : stmt -> string
(** Label-free structural fingerprint of a statement — also used by the
    clan folding of the abstract machine to identify alpha-identical
    code points. *)

val expr_to_string : expr -> string
