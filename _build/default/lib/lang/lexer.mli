(** Hand-written lexer.  Comments: [//] to end of line and nesting
    [/*] ... [*/]. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string  (** language keyword *)
  | PUNCT of string  (** operator or punctuation *)
  | EOF

type pos = { line : int; col : int }
type lexed = { tok : token; pos : pos }

exception Error of string * pos

val keywords : string list

val tokenize : string -> lexed list
(** The token stream, ending with [EOF].
    @raise Error on unterminated comments or unexpected characters. *)

val pp_token : Format.formatter -> token -> unit
