(** Syntactic may-access summaries, in terms of variable {e names} plus a
    memory token ("may read / write through a pointer").  The stubborn
    reduction resolves names against process environments to locations;
    procedure calls contribute their transitive memory effects (a callee
    touches only its own fresh locals and memory through pointers, so
    its externally visible summary is just two flags). *)

open Ast

type summary = {
  rvars : StringSet.t;  (** names possibly read *)
  wvars : StringSet.t;  (** names possibly written *)
  mem_read : bool;
  mem_write : bool;
}

val empty : summary
val union : summary -> summary -> summary
val reads_of_expr : expr -> summary
val writes_of_lvalue : lvalue -> summary

(** Externally visible effects of a procedure: memory flags only. *)
type proc_effects = { eff_mem_read : bool; eff_mem_write : bool }

val no_effects : proc_effects
val union_effects : proc_effects -> proc_effects -> proc_effects

val proc_effects_of_program : program -> string -> proc_effects
(** Fixpoint over the call graph; unknown names map to no effects. *)

val stmt_summary :
  effects:(string -> proc_effects option) ->
  any:proc_effects ->
  stmt ->
  summary
(** Whole-statement summary; [effects] resolves direct callees and [any]
    (the join over all procedures) covers indirect calls. *)

val pp_summary : Format.formatter -> summary -> unit
