lib/apps/placement.mli: Cobegin_analysis Event Format Lifetime
