lib/apps/parallelize.mli: Ast Cobegin_analysis Cobegin_lang Event Format Hashtbl
