lib/apps/placement.ml: Cobegin_analysis Event Format Lifetime List Pstring
