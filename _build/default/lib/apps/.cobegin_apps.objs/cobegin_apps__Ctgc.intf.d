lib/apps/ctgc.mli: Cobegin_analysis Event Format Lifetime Pstring
