lib/apps/parallelize.ml: Array Ast Cobegin_analysis Cobegin_lang Event Format Hashtbl List Pstring
