lib/apps/ctgc.ml: Cobegin_analysis Event Format Lifetime List Pstring
