(** Memory-hierarchy placement (paper section 7): objects referenced by
    concurrent threads go to the level visible to all of them; everything
    else stays in processor-local memory.  A direct consumer of the
    lifetime analysis. *)

open Cobegin_analysis

type level = Shared_memory | Local_memory

type decision = {
  obj : Event.obj;
  site : int;  (** allocation site *)
  level : level;
  reason : string;  (** human-readable justification *)
}

val decide : Lifetime.info list -> decision list
val shared : decision list -> decision list
val local : decision list -> decision list
val pp_level : Format.formatter -> level -> unit
val pp_decision : Format.formatter -> decision -> unit
val pp : Format.formatter -> decision list -> unit
