(** Parallelization support (paper section 7, Example 15 / Figure 8):
    Shasha–Snir [SS88] delay computation extended to procedure calls.

    For a program whose entry contains one cobegin of straight-line
    segments, accesses performed inside callees are attributed back to
    the call statements through their procedure strings; the
    cross-segment conflict graph then yields (a) the conflicting pairs,
    (b) the program arcs on critical cycles — the orders that must be
    kept as delays — and (c) the independent cross-segment pairs,
    candidates for further parallelization. *)

open Cobegin_lang
open Cobegin_analysis

type segment = { seg_index : int; stmts : int list (** labels, in order *) }
type arc = { from_stmt : int; to_stmt : int }

type report = {
  segments : segment list;
  conflicts : (int * int) list;  (** cross-segment conflicting pairs *)
  intra_conflicts : (int * int) list;
      (** data-dependent pairs within one segment: forbid splitting *)
  delays : arc list;  (** program arcs that must be enforced *)
  reorderable : arc list;  (** program arcs free to be relaxed *)
  parallelizable : (int * int) list;  (** independent cross-segment pairs *)
}

val segments_of : Ast.program -> segment list
(** The segments of the entry procedure's first cobegin (top-level
    statements of each branch). *)

val program_arcs : segment list -> arc list

val owner_map : Ast.program -> segment list -> (int, int) Hashtbl.t
(** Every descendant label of a segment statement, mapped to that
    statement's label. *)

val attribute :
  owners:(int, int) Hashtbl.t -> segment list -> Event.access -> int option
(** The segment statement responsible for an access: the owner of its
    label (covering nested atomics/conditionals), else the owner of a
    call frame in its procedure string. *)

val segment_conflicts :
  ?owners:(int, int) Hashtbl.t ->
  ?same_segment:bool ->
  Ast.program ->
  segment list ->
  Event.log ->
  (int * int) list
(** With [same_segment] the pairs within one segment (sequential data
    dependences) are reported instead of the cross-segment ones. *)

val critical_cycle_arcs : segment list -> (int * int) list -> arc list
(** Program arcs lying on mixed cycles (≥ 2 conflict edges, ≥ 1 program
    arc) — the [SS88] delays. *)

val analyze : Ast.program -> Event.log -> report

val split_segment :
  ?intra:(int * int) list -> arc list -> Ast.stmt list -> Ast.stmt list list
(** Maximal runs not crossed by a delay arc, an intra-segment dependence
    or a scope dependence. *)

val apply : Ast.program -> report -> Ast.program
(** Rewrite the entry cobegin so every delay-free run becomes its own
    branch — the "further parallelization" of Example 15.  Statements
    (and labels) are reused, so final stores of the original and the
    transformed program are directly comparable. *)

val pp_pair : Format.formatter -> int * int -> unit
val pp_arc : Format.formatter -> arc -> unit
val pp_report : Format.formatter -> report -> unit
