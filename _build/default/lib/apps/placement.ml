(* Memory-hierarchy placement (paper section 7):

     "Suppose each cobegin thread is executed in a processor.  If we know
      an object will be referenced by another concurrent thread, then it
      should be allocated in the memory accessible to both threads" —
      otherwise it can live in processor-local memory.

   Straightforward consumer of the lifetime analysis: objects with
   concurrent accessors go to the shared level, everything else is local
   to its owning activation. *)

open Cobegin_analysis

type level = Shared_memory | Local_memory

type decision = {
  obj : Event.obj;
  site : int;
  level : level;
  reason : string;
}

let decide (infos : Lifetime.info list) : decision list =
  List.map
    (fun (i : Lifetime.info) ->
      match i.Lifetime.placement with
      | Lifetime.Shared ->
          {
            obj = i.Lifetime.obj;
            site = i.Lifetime.site;
            level = Shared_memory;
            reason = "accessed by concurrent threads";
          }
      | Lifetime.Local owner ->
          {
            obj = i.Lifetime.obj;
            site = i.Lifetime.site;
            level = Local_memory;
            reason =
              Format.asprintf "all accesses within %a"
                (fun ppf p ->
                  if Pstring.depth p = 0 then
                    Format.pp_print_string ppf "the main thread"
                  else Pstring.pp ppf p)
                owner;
          })
    infos

let shared ds = List.filter (fun d -> d.level = Shared_memory) ds
let local ds = List.filter (fun d -> d.level = Local_memory) ds

let pp_level ppf = function
  | Shared_memory -> Format.pp_print_string ppf "SHARED"
  | Local_memory -> Format.pp_print_string ppf "local"

let pp_decision ppf d =
  Format.fprintf ppf "%a (site %d): %a — %s" Event.pp_obj d.obj d.site
    pp_level d.level d.reason

let pp ppf ds =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_decision)
    ds
