(** Compile-time garbage collection (paper section 7, after [Har89]):
    attach to each activation exit the deallocation list of objects whose
    extent it contains, so their storage is reclaimed without a runtime
    collector. *)

open Cobegin_analysis

type point =
  | Proc_exit of string  (** reclaim when this procedure returns *)
  | Branch_exit of int * int  (** reclaim at the join of (cobegin, branch) *)
  | Program_exit

val point_of_owner : Pstring.t -> point

type entry = { obj : Event.obj; site : int; heap : bool; at : point }

val deallocation_plan : Lifetime.info list -> entry list

val statically_reclaimed : entry list -> entry list
(** Heap objects a runtime collector no longer needs to track. *)

val pp_point : Format.formatter -> point -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> entry list -> unit
