(* Parallelization support (paper section 7, Example 15 / Figure 8;
   Shasha–Snir [SS88] extended to procedure calls).

   Input: a program whose entry has one top-level cobegin of straight-line
   *segments* (possibly containing calls — the extension the paper makes).
   Using the dependence analysis, we build the conflict graph between
   statements of different segments and

     (a) report the conflicting pairs,
     (b) compute the program arcs that must be kept as *delays* to
         preserve sequential consistency: the arcs lying on critical
         (mixed) cycles of P ∪ C [SS88] — the remaining arcs may be
         reordered or executed in parallel,
     (c) report cross-segment statement pairs with no dependence at all:
         candidates for further parallelization. *)

open Cobegin_lang
open Cobegin_analysis

type segment = { seg_index : int; stmts : int list (* labels in order *) }

type arc = { from_stmt : int; to_stmt : int }

type report = {
  segments : segment list;
  conflicts : (int * int) list; (* cross-segment conflicting label pairs *)
  intra_conflicts : (int * int) list;
      (* data-dependent pairs within one segment: they forbid splitting *)
  delays : arc list; (* program arcs that must be enforced *)
  reorderable : arc list; (* program arcs free to be relaxed *)
  parallelizable : (int * int) list; (* independent cross-segment pairs *)
}

(* Extract the segments of the entry procedure's unique cobegin.  Only
   the top-level statements of each branch are segment members. *)
let segments_of (prog : Ast.program) : segment list =
  let entry = Ast.entry_proc prog in
  let found = ref None in
  ignore
    (Ast.fold_stmt
       (fun () s ->
         match s.Ast.kind with
         | Ast.Scobegin bs when !found = None -> found := Some bs
         | _ -> ())
       () entry.Ast.body);
  match !found with
  | None -> []
  | Some bs ->
      List.mapi
        (fun i b ->
          let stmts =
            match b.Ast.kind with
            | Ast.Sblock ss -> List.map (fun (s : Ast.stmt) -> s.Ast.label) ss
            | _ -> [ b.Ast.label ]
          in
          { seg_index = i; stmts })
        bs

(* Program arcs: consecutive statements within a segment. *)
let program_arcs segs =
  List.concat_map
    (fun seg ->
      let rec arcs = function
        | a :: (b :: _ as rest) -> { from_stmt = a; to_stmt = b } :: arcs rest
        | _ -> []
      in
      arcs seg.stmts)
    segs

(* Critical cycles: simple cycles mixing program arcs (directed) and
   conflict edges (undirected) that use at least two conflict edges and
   at least one program arc — the cycles of [SS88] whose program arcs
   must be enforced with delays.  Statement counts at this level are tiny,
   so plain DFS enumeration suffices. *)
let critical_cycle_arcs segs (conflicts : (int * int) list) : arc list =
  let p_arcs = program_arcs segs in
  let succs_p l =
    List.filter_map
      (fun a -> if a.from_stmt = l then Some a.to_stmt else None)
      p_arcs
  in
  let succs_c l =
    List.concat_map
      (fun (x, y) -> if x = l then [ y ] else if y = l then [ x ] else [])
      conflicts
  in
  let on_cycle : (arc, unit) Hashtbl.t = Hashtbl.create 16 in
  let record edges =
    List.iter
      (fun (f, t, kind) ->
        if kind = `P then Hashtbl.replace on_cycle { from_stmt = f; to_stmt = t } ())
      edges
  in
  let all_stmts = List.concat_map (fun s -> s.stmts) segs in
  (* DFS over nodes; [edges] is the reversed path of (from, to, kind). *)
  let rec dfs start current edges visited =
    if List.length edges <= 10 then begin
      let consider kind next =
        let c_count =
          List.length (List.filter (fun (_, _, k) -> k = `C) edges)
          + if kind = `C then 1 else 0
        in
        let p_count =
          List.length (List.filter (fun (_, _, k) -> k = `P) edges)
          + if kind = `P then 1 else 0
        in
        if next = start then begin
          if c_count >= 2 && p_count >= 1 then
            record ((current, next, kind) :: edges)
        end
        else if not (List.mem next visited) then
          dfs start next ((current, next, kind) :: edges) (next :: visited)
      in
      List.iter (consider `P) (succs_p current);
      List.iter (consider `C) (succs_c current)
    end
  in
  List.iter (fun l -> dfs l l [] [ l ]) all_stmts;
  Hashtbl.fold (fun a () acc -> a :: acc) on_cycle [] |> List.sort compare

(* Attribute an access to the segment statement responsible for it:
   its own label when it sits inside a segment statement (including
   nested atomic blocks, conditionals and loops — [owner_map] maps every
   descendant label up to its top-level segment statement), otherwise
   the site of the call frame (in its procedure string) that belongs to
   a segment — the paper's use of procedure strings to lift heap
   accesses inside callees back to the calls of Example 15. *)
let owner_map (prog : Ast.program) segs : (int, int) Hashtbl.t =
  let tbl = Hashtbl.create 32 in
  let seg_stmts = List.concat_map (fun s -> s.stmts) segs in
  List.iter
    (fun top_label ->
      match Ast.stmt_at prog top_label with
      | None -> ()
      | Some top ->
          ignore
            (Ast.fold_stmt
               (fun () s -> Hashtbl.replace tbl s.Ast.label top_label)
               () top))
    seg_stmts;
  tbl

let attribute ~owners segs (a : Event.access) : int option =
  ignore segs;
  match Hashtbl.find_opt owners a.Event.label with
  | Some top -> Some top
  | None ->
      List.find_map
        (function
          | Pstring.Fcall { site; _ } -> Hashtbl.find_opt owners site
          | _ -> None)
        (Pstring.frames a.Event.pstr)

(* Cross-segment conflicts at segment-statement granularity. *)
let segment_conflicts ?owners ?(same_segment = false) prog segs
    (log : Event.log) : (int * int) list =
  let owners =
    match owners with Some o -> o | None -> owner_map prog segs
  in
  let seg_of l =
    let rec go = function
      | [] -> None
      | s :: rest -> if List.mem l s.stmts then Some s.seg_index else go rest
    in
    go segs
  in
  let conflicts = ref [] in
  let accs = Array.of_list log.Event.accesses in
  let n = Array.length accs in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a1 = accs.(i) and a2 = accs.(j) in
      if
        Event.equal_obj a1.Event.obj a2.Event.obj
        && (a1.Event.kind = Event.Write || a2.Event.kind = Event.Write)
        && (same_segment
           || Event.may_happen_in_parallel log a1.Event.pstr a2.Event.pstr)
      then
        match (attribute ~owners segs a1, attribute ~owners segs a2) with
        | Some l1, Some l2 when l1 <> l2 -> (
            match (seg_of l1, seg_of l2) with
            | Some g1, Some g2 when (if same_segment then g1 = g2 else g1 <> g2)
              ->
                conflicts := (min l1 l2, max l1 l2) :: !conflicts
            | _ -> ())
        | _ -> ()
    done
  done;
  List.sort_uniq compare !conflicts

(* Full report from an instrumentation log. *)
let analyze (prog : Ast.program) (log : Event.log) : report =
  let segs = segments_of prog in
  let cross_pairs =
    List.concat_map
      (fun s1 ->
        List.concat_map
          (fun s2 ->
            if s1.seg_index < s2.seg_index then
              List.concat_map
                (fun l1 -> List.map (fun l2 -> (min l1 l2, max l1 l2)) s2.stmts)
                s1.stmts
            else [])
          segs)
      segs
  in
  let owners = owner_map prog segs in
  let conflicts = segment_conflicts ~owners prog segs log in
  let intra_conflicts =
    segment_conflicts ~owners ~same_segment:true prog segs log
  in
  let delays = critical_cycle_arcs segs conflicts in
  let reorderable =
    List.filter (fun a -> not (List.mem a delays)) (program_arcs segs)
  in
  let parallelizable =
    List.filter (fun pr -> not (List.mem pr conflicts)) cross_pairs
  in
  {
    segments = segs;
    conflicts;
    intra_conflicts;
    delays;
    reorderable;
    parallelizable;
  }

let pp_pair ppf (a, b) = Format.fprintf ppf "(s%d, s%d)" a b
let pp_arc ppf a = Format.fprintf ppf "s%d → s%d" a.from_stmt a.to_stmt

let pp_report ppf r =
  let pl pp_elt = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_elt in
  Format.fprintf ppf
    "@[<v>segments: %d@ conflicting pairs: @[%a@]@ delays (must keep): @[%a@]@ \
     reorderable arcs: @[%a@]@ parallelizable pairs: @[%a@]@]"
    (List.length r.segments) (pl pp_pair) r.conflicts (pl pp_arc) r.delays
    (pl pp_arc) r.reorderable (pl pp_pair) r.parallelizable

(* --- applying the transformation (paper section 7) ---

   Split every segment into maximal runs not crossed by a delay arc and
   turn each run into its own cobegin branch: runs with no enforced
   order may execute in parallel [SS88].  Statements are reused as-is
   (labels preserved), so exploring the original and the transformed
   program yields directly comparable final stores. *)

let split_segment ?(intra = []) (delays : arc list) (stmts : Ast.stmt list) :
    Ast.stmt list list =
  let delayed a b =
    List.exists (fun d -> d.from_stmt = a && d.to_stmt = b) delays
  in
  (* a boundary is splittable only when no later statement uses a name
     declared earlier in the segment: branches of the rewritten cobegin
     only share the scope at the cobegin itself *)
  let declared (s : Ast.stmt) =
    Ast.fold_stmt
      (fun acc s' ->
        match s'.Ast.kind with
        | Ast.Sdecl (x, _) -> Ast.StringSet.add x acc
        | _ -> acc)
      Ast.StringSet.empty s
  in
  let uses (s : Ast.stmt) =
    let sum =
      Cobegin_lang.Access.stmt_summary
        ~effects:(fun _ -> None)
        ~any:Cobegin_lang.Access.no_effects s
    in
    Ast.StringSet.union sum.Cobegin_lang.Access.rvars
      sum.Cobegin_lang.Access.wvars
  in
  let glued prefix suffix =
    (* (a) scoping: a later run must not use a name declared earlier *)
    let decls =
      List.fold_left
        (fun acc s -> Ast.StringSet.union acc (declared s))
        Ast.StringSet.empty prefix
    in
    let used =
      List.fold_left
        (fun acc s -> Ast.StringSet.union acc (uses s))
        Ast.StringSet.empty suffix
    in
    (not (Ast.StringSet.is_empty (Ast.StringSet.inter decls used)))
    ||
    (* (b) intra-segment data dependence, from the precise access log:
       unlike the memory-system reorderings of [SS88], turning two runs
       into parallel branches also requires data independence *)
    List.exists
      (fun (p : Ast.stmt) ->
        List.exists
          (fun (q : Ast.stmt) ->
            let a = min p.Ast.label q.Ast.label
            and b = max p.Ast.label q.Ast.label in
            List.mem (a, b) intra)
          suffix)
      prefix
  in
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | s :: rest -> (
        match current with
        | [] -> go [ s ] acc rest
        | prev :: _ ->
            if
              delayed prev.Ast.label s.Ast.label
              || glued (List.rev current) (s :: rest)
            then go (s :: current) acc rest
            else go [ s ] (List.rev current :: acc) rest)
  in
  match stmts with [] -> [] | _ -> go [] [] stmts

let apply (prog : Ast.program) (r : report) : Ast.program =
  let rewrite_cobegin (bs : Ast.stmt list) : Ast.stmt list =
    List.concat_map
      (fun (b : Ast.stmt) ->
        let stmts =
          match b.Ast.kind with Ast.Sblock ss -> ss | _ -> [ b ]
        in
        List.map
          (fun run -> Ast.mk (Ast.Sblock run))
          (split_segment ~intra:r.intra_conflicts r.delays stmts))
      bs
  in
  let seen_first = ref false in
  let rec go (s : Ast.stmt) : Ast.stmt =
    match s.Ast.kind with
    | Ast.Scobegin bs when not !seen_first ->
        seen_first := true;
        { s with Ast.kind = Ast.Scobegin (rewrite_cobegin bs) }
    | Ast.Sblock ss -> { s with Ast.kind = Ast.Sblock (List.map go ss) }
    | Ast.Sif (c, a, b) -> { s with Ast.kind = Ast.Sif (c, go a, go b) }
    | Ast.Swhile (c, b) -> { s with Ast.kind = Ast.Swhile (c, go b) }
    | _ -> s
  in
  {
    Ast.procs =
      List.map
        (fun (p : Ast.proc) ->
          if p.Ast.pname = (Ast.entry_proc prog).Ast.pname then
            { p with Ast.body = go p.Ast.body }
          else p)
        prog.Ast.procs;
  }
