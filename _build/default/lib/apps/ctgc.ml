(* Compile-time garbage collection (paper section 7, after [Har89]):
   attach to each procedure exit a *deallocation list* — the objects whose
   extent is contained in that activation, so their storage can be
   reclaimed without a runtime collector.  Objects owned by a cobegin
   branch die at the branch's join; objects owned by no activation live
   until program exit. *)

open Cobegin_analysis

type point =
  | Proc_exit of string (* reclaim at return of this procedure *)
  | Branch_exit of int * int (* reclaim at join of cobegin (label, branch) *)
  | Program_exit

let point_of_owner owner =
  match Pstring.innermost owner with
  | None -> Program_exit
  | Some (Pstring.Fcall { proc; _ }) -> Proc_exit proc
  | Some (Pstring.Fbranch { cob; idx; _ }) -> Branch_exit (cob, idx)

type entry = { obj : Event.obj; site : int; heap : bool; at : point }

let deallocation_plan (infos : Lifetime.info list) : entry list =
  List.map
    (fun (i : Lifetime.info) ->
      {
        obj = i.Lifetime.obj;
        site = i.Lifetime.site;
        heap = i.Lifetime.heap;
        at = point_of_owner i.Lifetime.owner;
      })
    infos

(* The heap objects a runtime GC no longer needs to track: everything
   with a static reclamation point. *)
let statically_reclaimed entries =
  List.filter (fun e -> e.heap && e.at <> Program_exit) entries

let pp_point ppf = function
  | Proc_exit p -> Format.fprintf ppf "exit of %s" p
  | Branch_exit (cob, idx) -> Format.fprintf ppf "join of cobegin %d, branch %d" cob idx
  | Program_exit -> Format.pp_print_string ppf "program exit"

let pp_entry ppf e =
  Format.fprintf ppf "%a (site %d%s) ⇒ reclaim at %a" Event.pp_obj e.obj
    e.site
    (if e.heap then ", heap" else "")
    pp_point e.at

let pp ppf entries =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    entries
