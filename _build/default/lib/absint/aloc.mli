(** Abstract locations (paper section 6): concrete locations abstracted
    by their creation point — a declaration site, a formal parameter
    slot (context-insensitive, one cell per formal), or a malloc site
    (block offsets folded in).  Finite for any program, which together
    with the store lattice makes the abstract configuration space
    finite. *)

type t =
  | Adecl of { site : int; var : string }
  | Aparam of { proc : string; idx : int; var : string }
  | Asite of { site : int }  (** malloc block, all offsets *)

val compare : t -> t -> int
val equal : t -> t -> bool

val site : t -> int option
(** The creation site label; [None] for parameters (identified by their
    callee, not a site). *)

val is_heap : t -> bool
val pp : Format.formatter -> t -> unit

module Ordered : sig
  type nonrec t = t

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Set : module type of Cobegin_domains.Powerset.Make (Ordered)
