lib/absint/aloc.mli: Cobegin_domains Format
