lib/absint/machine.ml: Aloc Alog Ast Aval Bool3 Cobegin_domains Cobegin_lang Format Hashtbl Int Lattice List Map Pretty Printf Pstring Queue String
