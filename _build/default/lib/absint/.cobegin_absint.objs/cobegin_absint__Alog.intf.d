lib/absint/alog.mli: Aloc Format Pstring Set
