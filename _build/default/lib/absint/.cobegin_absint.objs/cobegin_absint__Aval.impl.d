lib/absint/aval.ml: Aloc Bool3 Cobegin_domains Format Lattice List Powerset String
