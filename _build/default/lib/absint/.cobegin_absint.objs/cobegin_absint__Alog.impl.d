lib/absint/alog.ml: Aloc Format Pstring Set
