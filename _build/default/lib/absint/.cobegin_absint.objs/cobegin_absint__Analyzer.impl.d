lib/absint/analyzer.ml: Alog Cobegin_domains Cobegin_lang Const Format Int_parity Interval Machine Parity Sign
