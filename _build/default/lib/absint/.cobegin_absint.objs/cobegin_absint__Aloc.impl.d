lib/absint/aloc.ml: Cobegin_domains Format Int String
