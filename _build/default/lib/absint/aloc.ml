(* Abstract locations (paper section 6): the abstraction of concrete
   locations by their creation point.  A concrete location (pid, site,
   seq, off) abstracts to its site — a declaration site, a parameter slot
   of a call site, or a malloc site (block offsets folded into the site).
   The abstraction is finite for any program, which is one of the two
   ingredients making the abstract configuration space finite (the other
   is the store lattice). *)

type t =
  | Adecl of { site : int; var : string }
  | Aparam of { proc : string; idx : int; var : string }
      (* context-insensitive: one abstract cell per formal parameter *)
  | Asite of { site : int } (* malloc block, all offsets *)

let compare (a : t) (b : t) =
  match (a, b) with
  | Adecl x, Adecl y ->
      let c = Int.compare x.site y.site in
      if c <> 0 then c else String.compare x.var y.var
  | Aparam x, Aparam y ->
      let c = String.compare x.proc y.proc in
      if c <> 0 then c else Int.compare x.idx y.idx
  | Asite x, Asite y -> Int.compare x.site y.site
  | Adecl _, _ -> -1
  | _, Adecl _ -> 1
  | Aparam _, _ -> -1
  | _, Aparam _ -> 1

let equal a b = compare a b = 0

let site = function
  | Adecl { site; _ } | Asite { site } -> Some site
  | Aparam _ -> None

let is_heap = function Asite _ -> true | Adecl _ | Aparam _ -> false

let pp ppf = function
  | Adecl { site; var } -> Format.fprintf ppf "%s@@%d" var site
  | Aparam { proc; idx; var } -> Format.fprintf ppf "%s.%s#%d" proc var idx
  | Asite { site } -> Format.fprintf ppf "heap@@%d" site

module Ordered = struct
  type nonrec t = t

  let compare = compare
  let equal = equal
  let pp = pp
end

module Set = Cobegin_domains.Powerset.Make (Ordered)
