(* The abstract instrumentation log: what the instrumented abstract
   semantics records.  Accesses carry the *abstract* procedure string
   (instances erased, k-limited) — precise enough for side effects,
   dependences, and lifetimes at the abstraction the paper describes. *)

type kind = Read | Write

type access = {
  label : int; (* statement performing the access *)
  aloc : Aloc.t;
  kind : kind;
  apstr : Pstring.t;
}

type alloc = { al_aloc : Aloc.t; al_site : int; al_birth : Pstring.t }

module AccessSet = Set.Make (struct
  type t = access

  let compare = compare
end)

module AllocSet = Set.Make (struct
  type t = alloc

  let compare = compare
end)

type t = { accesses : AccessSet.t; allocs : AllocSet.t }

let empty = { accesses = AccessSet.empty; allocs = AllocSet.empty }

let add_access a log = { log with accesses = AccessSet.add a log.accesses }
let add_alloc a log = { log with allocs = AllocSet.add a log.allocs }

let union a b =
  {
    accesses = AccessSet.union a.accesses b.accesses;
    allocs = AllocSet.union a.allocs b.allocs;
  }

let accesses log = AccessSet.elements log.accesses
let allocs log = AllocSet.elements log.allocs

let pp_kind ppf = function
  | Read -> Format.pp_print_string ppf "R"
  | Write -> Format.pp_print_string ppf "W"

let pp_access ppf a =
  Format.fprintf ppf "%a(%a)@@stmt%d in %a" pp_kind a.kind Aloc.pp a.aloc
    a.label Pstring.pp a.apstr

let pp ppf log =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_access)
    (accesses log)
