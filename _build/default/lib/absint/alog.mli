(** The abstract instrumentation log: accesses and allocations recorded
    by the abstract machine, at abstract locations and instance-erased
    k-limited procedure strings.  Deduplicated by construction (sets). *)

type kind = Read | Write

type access = {
  label : int;  (** statement performing the access; -1 = implicit *)
  aloc : Aloc.t;
  kind : kind;
  apstr : Pstring.t;  (** abstract procedure string *)
}

type alloc = { al_aloc : Aloc.t; al_site : int; al_birth : Pstring.t }

module AccessSet : Set.S with type elt = access
module AllocSet : Set.S with type elt = alloc

type t = { accesses : AccessSet.t; allocs : AllocSet.t }

val empty : t
val add_access : access -> t -> t
val add_alloc : alloc -> t -> t
val union : t -> t -> t
val accesses : t -> access list
val allocs : t -> alloc list
val pp_kind : Format.formatter -> kind -> unit
val pp_access : Format.formatter -> access -> unit
val pp : Format.formatter -> t -> unit
