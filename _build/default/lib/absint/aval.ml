(* Abstract values: the product of
     - a numeric component (functor parameter: intervals by default),
     - a three-valued boolean component,
     - a points-to set of abstract locations,
     - a set of procedure names (abstraction of function values).
   The concretization of a record is the union of the concretizations of
   its components; evaluation is strict in bottom. *)

open Cobegin_domains

module Make (N : Lattice.NUMERIC) = struct
  module FunSet = Powerset.Make (struct
    type t = string

    let compare = String.compare
    let equal = String.equal
    let pp = Format.pp_print_string
  end)

  type t = {
    num : N.t;
    bool3 : Bool3.t;
    ptrs : Aloc.Set.t;
    funs : FunSet.t;
  }

  let bottom =
    {
      num = N.bottom;
      bool3 = Bool3.bottom;
      ptrs = Aloc.Set.bottom;
      funs = FunSet.bottom;
    }

  let is_bottom v =
    N.is_bottom v.num && Bool3.is_bottom v.bool3
    && Aloc.Set.is_bottom v.ptrs && FunSet.is_bottom v.funs

  let of_int n = { bottom with num = N.of_int n }
  let of_bool b = { bottom with bool3 = Bool3.of_bool b }
  let of_aloc l = { bottom with ptrs = Aloc.Set.singleton l }
  let of_alocs ls = { bottom with ptrs = ls }
  let of_fun f = { bottom with funs = FunSet.singleton f }
  let num_top = { bottom with num = N.top }

  (* The default value of fresh cells is the integer 0. *)
  let zero = of_int 0

  let join a b =
    {
      num = N.join a.num b.num;
      bool3 = Bool3.join a.bool3 b.bool3;
      ptrs = Aloc.Set.join a.ptrs b.ptrs;
      funs = FunSet.join a.funs b.funs;
    }

  let widen a b =
    {
      num = N.widen a.num b.num;
      bool3 = Bool3.widen a.bool3 b.bool3;
      ptrs = Aloc.Set.widen a.ptrs b.ptrs;
      funs = FunSet.widen a.funs b.funs;
    }

  let leq a b =
    N.leq a.num b.num && Bool3.leq a.bool3 b.bool3
    && Aloc.Set.leq a.ptrs b.ptrs && FunSet.leq a.funs b.funs

  let equal a b =
    N.equal a.num b.num && Bool3.equal a.bool3 b.bool3
    && Aloc.Set.equal a.ptrs b.ptrs && FunSet.equal a.funs b.funs

  (* --- operator transfer functions --- *)

  let lift_num f a b = { bottom with num = f a.num b.num }

  let add a b = lift_num N.add a b
  let sub a b = lift_num N.sub a b
  let mul a b = lift_num N.mul a b
  let div a b = lift_num N.div a b
  let neg a = { bottom with num = N.neg a.num }
  let not_ a = { bottom with bool3 = Bool3.not_ a.bool3 }
  let and_ a b = { bottom with bool3 = Bool3.and_ a.bool3 b.bool3 }
  let or_ a b = { bottom with bool3 = Bool3.or_ a.bool3 b.bool3 }

  (* Which components are populated? *)
  let kinds v =
    (if not (N.is_bottom v.num) then [ `Num ] else [])
    @ (if not (Bool3.is_bottom v.bool3) then [ `Bool ] else [])
    @ (if not (Aloc.Set.is_bottom v.ptrs) then [ `Ptr ] else [])
    @ if not (FunSet.is_bottom v.funs) then [ `Fun ] else []

  (* Equality may relate any two components of the same kind; values of
     different kinds compare unequal (so e.g. pointer != 0 is decided). *)
  let cmp_eq a b =
    let num = Bool3.of_option (N.cmp_eq a.num b.num) in
    let num =
      if N.is_bottom a.num || N.is_bottom b.num then Bool3.Bot else num
    in
    let bools =
      match (a.bool3, b.bool3) with
      | Bool3.Bot, _ | _, Bool3.Bot -> Bool3.Bot
      | Bool3.True, Bool3.True | Bool3.False, Bool3.False -> Bool3.True
      | Bool3.True, Bool3.False | Bool3.False, Bool3.True -> Bool3.False
      | _ -> Bool3.Either
    in
    let ptrs =
      if Aloc.Set.is_bottom a.ptrs || Aloc.Set.is_bottom b.ptrs then Bool3.Bot
      else if Aloc.Set.is_bottom (Aloc.Set.inter a.ptrs b.ptrs) then
        Bool3.False
      else Bool3.Either
      (* same abstract location does not imply same concrete one *)
    in
    let funs =
      if FunSet.is_bottom a.funs || FunSet.is_bottom b.funs then Bool3.Bot
      else
        match (FunSet.elements a.funs, FunSet.elements b.funs) with
        | [ f ], [ g ] when String.equal f g -> Bool3.True
        | _ ->
            if FunSet.is_bottom (FunSet.inter a.funs b.funs) then Bool3.False
            else Bool3.Either
    in
    let cross =
      (* a value of one kind never equals a value of another *)
      if
        List.exists
          (fun ka -> List.exists (fun kb -> ka <> kb) (kinds b))
          (kinds a)
      then Bool3.False
      else Bool3.Bot
    in
    {
      bottom with
      bool3 =
        List.fold_left Bool3.join Bool3.Bot [ num; bools; ptrs; funs; cross ];
    }

  let cmp_ne a b = not_ (cmp_eq a b)

  let cmp_with f a b =
    { bottom with bool3 = Bool3.of_option (f a.num b.num) }
    |> fun v ->
    if N.is_bottom a.num || N.is_bottom b.num then bottom else v

  let cmp_lt a b = cmp_with N.cmp_lt a b
  let cmp_le a b = cmp_with N.cmp_le a b
  let cmp_gt a b = cmp_with N.cmp_lt b a
  let cmp_ge a b = cmp_with N.cmp_le b a

  (* Branch refinement on the numeric component. *)
  let assume_num f a b = { a with num = f a.num b.num }

  let pp ppf v =
    let parts = ref [] in
    if not (N.is_bottom v.num) then
      parts := Format.asprintf "%a" N.pp v.num :: !parts;
    if not (Bool3.is_bottom v.bool3) then
      parts := Format.asprintf "%a" Bool3.pp v.bool3 :: !parts;
    if not (Aloc.Set.is_bottom v.ptrs) then
      parts := Format.asprintf "ptr%a" Aloc.Set.pp v.ptrs :: !parts;
    if not (FunSet.is_bottom v.funs) then
      parts := Format.asprintf "fun%a" FunSet.pp v.funs :: !parts;
    match !parts with
    | [] -> Format.pp_print_string ppf "⊥"
    | ps -> Format.pp_print_string ppf (String.concat "∨" (List.rev ps))
end
