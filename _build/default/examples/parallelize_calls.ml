(* Further parallelization of procedure calls (paper Example 15 /
   Figure 8): four calls in two segments; the analysis finds dependences
   only between (s1,s4) and (s2,s3), so the other pairs can be reordered
   or run in parallel — the [SS88] technique "easily extended to
   procedure calls".

     dune exec examples/parallelize_calls.exe *)

open Cobegin_core
open Cobegin_models

let () =
  let prog = Pipeline.load_source Figures.fig8 in
  Format.printf "program:@.%a@." Cobegin_lang.Pretty.pp_program prog;

  (* concrete engine *)
  let report = Pipeline.analyze prog in
  let par = Pipeline.parallelization report in
  Format.printf "=== concrete engine ===@.%a@.@."
    Cobegin_apps.Parallelize.pp_report par;

  (* the abstract engine reaches the same verdict without enumerating
     interleavings *)
  let report_abs =
    Pipeline.analyze
      ~options:
        {
          Pipeline.default_options with
          engine =
            Pipeline.Abstract
              (Cobegin_absint.Analyzer.Intervals, Cobegin_absint.Machine.Control);
        }
      prog
  in
  let par_abs = Pipeline.parallelization report_abs in
  Format.printf "=== abstract engine ===@.%a@."
    Cobegin_apps.Parallelize.pp_report par_abs;

  (* side effects of the four procedures: f1/f3 write through their
     pointer argument, f2/f4 only read *)
  Format.printf "@.side effects:@.";
  List.iter
    (fun r ->
      if r.Cobegin_analysis.Side_effect.proc <> "main" then
        Format.printf "%a@." Cobegin_analysis.Side_effect.pp_report r)
    report.Pipeline.side_effects
