(* Peterson's algorithm, correct and compiler-broken: the paper's
   introductory argument that a compiler may not reorder shared accesses
   without the analysis this framework provides.

     dune exec examples/peterson_demo.exe *)

open Cobegin_core
open Cobegin_models
open Cobegin_semantics

let explore src =
  let ctx = Step.make_ctx (Pipeline.load_source src) in
  (ctx, Cobegin_explore.Space.full ctx)

let () =
  Format.printf "=== Peterson, as written ===@.";
  let _, ok = explore Protocols.peterson in
  Format.printf "%a@." Cobegin_explore.Space.pp_stats ok.Cobegin_explore.Space.stats;
  assert (ok.Cobegin_explore.Space.stats.Cobegin_explore.Space.errors = 0);
  Format.printf "mutual exclusion holds in every interleaving@.@.";

  Format.printf "=== Peterson after a 'harmless' compiler reordering ===@.";
  let ctx, broken = explore Protocols.peterson_broken in
  Format.printf "%a@." Cobegin_explore.Space.pp_stats
    broken.Cobegin_explore.Space.stats;
  assert (broken.Cobegin_explore.Space.stats.Cobegin_explore.Space.errors > 0);

  (* produce and validate a concrete violating schedule *)
  (match Cobegin_explore.Trace.error_witness ctx with
  | None -> assert false
  | Some w ->
      Format.printf "violating schedule:@.%a@." Cobegin_explore.Trace.pp_witness w;
      (match Replay.replay ctx w.Cobegin_explore.Trace.schedule with
      | Replay.Replayed c when Config.is_error c ->
          Format.printf "replayed: %s@." (Option.get c.Config.error)
      | _ -> assert false));

  (* why the reordering is illegal: flag0 and turn are critical
     references, so their order is load-bearing *)
  let report = Pipeline.analyze (Pipeline.load_source Protocols.peterson) in
  Format.printf "@.critical references in the correct version: %a@."
    Cobegin_trans.Critical.pp report.Pipeline.critical
