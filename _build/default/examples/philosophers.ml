(* Dining philosophers, two ways (paper section 2.2's citation of
   [Val88]: stubborn sets reduce the reachability graph from exponential
   to roughly quadratic in n).

     dune exec examples/philosophers.exe [-- n]     (default n = 5) *)

open Cobegin_models
open Cobegin_petri

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5
  in

  (* 1. The Petri-net formulation: full vs stubborn reachability. *)
  Format.printf "=== philosophers as a place/transition net (n = %d) ===@." n;
  let net = Philosophers.net n in
  let full = Reach.full net in
  let stub = Reach.stubborn net in
  Format.printf "full:     %a@." Reach.pp_stats full.Reach.stats;
  Format.printf "stubborn: %a@." Reach.pp_stats stub.Reach.stats;
  Format.printf "both find the same deadlocks: %b@.@."
    (List.sort compare (List.map Array.to_list full.Reach.deadlock_markings)
    = List.sort compare (List.map Array.to_list stub.Reach.deadlock_markings));

  (* The classic circular-wait deadlock is found (every philosopher holds
     a left fork). *)
  (match stub.Reach.deadlock_markings with
  | m :: _ ->
      Format.printf "a deadlock marking: %a@.@." (Net.pp_marking net) m
  | [] -> Format.printf "no deadlock (unexpected for this net)@.@.");

  (* 2. The same system as a cobegin program with test-and-set locks,
     explored by the program engines (small n: program states are much
     richer than net markings). *)
  let pn = min n 3 in
  Format.printf "=== philosophers as a program (n = %d) ===@." pn;
  let prog = Cobegin_core.Pipeline.load_source (Philosophers.program pn) in
  let ctx = Cobegin_semantics.Step.make_ctx prog in
  let fullp = Cobegin_explore.Space.full ctx in
  let stubp = Cobegin_explore.Stubborn.explore ctx in
  Format.printf "full:     %a@." Cobegin_explore.Space.pp_stats
    fullp.Cobegin_explore.Space.stats;
  Format.printf "stubborn: %a@." Cobegin_explore.Space.pp_stats
    stubp.Cobegin_explore.Space.stats;
  Format.printf "deadlocks agree: %b@."
    (fullp.Cobegin_explore.Space.stats.Cobegin_explore.Space.deadlocks
    = stubp.Cobegin_explore.Space.stats.Cobegin_explore.Space.deadlocks)
