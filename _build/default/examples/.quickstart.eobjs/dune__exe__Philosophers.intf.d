examples/philosophers.mli:
