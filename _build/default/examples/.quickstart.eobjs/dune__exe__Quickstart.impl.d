examples/quickstart.ml: Cobegin_core Cobegin_explore Cobegin_semantics Format List Pipeline Printf String
