examples/memory_management.ml: Cobegin_analysis Cobegin_apps Cobegin_core Cobegin_lang Cobegin_models Ctgc Figures Format Lifetime List Pipeline Placement
