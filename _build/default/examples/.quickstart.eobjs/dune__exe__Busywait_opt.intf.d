examples/busywait_opt.mli:
