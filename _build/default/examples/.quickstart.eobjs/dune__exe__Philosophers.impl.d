examples/philosophers.ml: Array Cobegin_core Cobegin_explore Cobegin_models Cobegin_petri Cobegin_semantics Format List Net Philosophers Reach Sys
