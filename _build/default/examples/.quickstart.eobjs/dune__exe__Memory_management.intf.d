examples/memory_management.mli:
