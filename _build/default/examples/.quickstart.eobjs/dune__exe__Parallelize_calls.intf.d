examples/parallelize_calls.mli:
