examples/quickstart.mli:
