examples/peterson_demo.ml: Cobegin_core Cobegin_explore Cobegin_models Cobegin_semantics Cobegin_trans Config Format Option Pipeline Protocols Replay Step
