examples/peterson_demo.mli:
