(* Object lifetimes, hierarchical memory placement and compile-time GC
   (paper sections 5.3 and 7, Example 8): the cell written by one thread
   and read by the other must live in shared memory; the private cell can
   be local, and both can be reclaimed without a garbage collector.

     dune exec examples/memory_management.exe *)

open Cobegin_core
open Cobegin_models
open Cobegin_analysis
open Cobegin_apps

let () =
  let prog = Pipeline.load_source Figures.example8 in
  Format.printf "program:@.%a@." Cobegin_lang.Pretty.pp_program prog;
  let report = Pipeline.analyze prog in

  Format.printf "=== lifetimes ===@.";
  List.iter
    (fun i -> Format.printf "%a@." Lifetime.pp_info i)
    report.Pipeline.lifetimes;

  Format.printf "@.=== memory placement ===@.";
  Format.printf "%a@." Placement.pp report.Pipeline.placements;

  let heap_shared =
    List.filter
      (fun (i : Lifetime.info) ->
        i.Lifetime.heap && i.Lifetime.placement = Lifetime.Shared)
      report.Pipeline.lifetimes
  in
  Format.printf "@.heap objects needing the shared level: %d@."
    (List.length heap_shared);

  Format.printf "@.=== compile-time GC plan ===@.";
  Format.printf "%a@." Ctgc.pp report.Pipeline.gc_plan;
  let reclaimed = Ctgc.statically_reclaimed report.Pipeline.gc_plan in
  Format.printf "@.heap objects reclaimed statically: %d@."
    (List.length reclaimed)
