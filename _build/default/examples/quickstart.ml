(* Quickstart: parse a small cobegin program, explore its state space with
   and without stubborn-set reduction, and print the analysis report.

     dune exec examples/quickstart.exe *)

open Cobegin_core

let source =
  {|
proc main() {
  var a = 0;
  var b = 0;
  var x = 0;
  var y = 0;
  cobegin
    { a = 1; x = b; }
    { b = 1; y = a; }
  coend;
}
|}

let () =
  (* 1. The one-call API: pick an engine, get the full report. *)
  let report =
    Pipeline.analyze_source
      ~options:{ Pipeline.default_options with engine = Pipeline.Concrete_full }
      source
  in
  Format.printf "=== full analysis report ===@.%a@.@." Pipeline.pp_report
    report;

  (* 2. Compare engines on the same program. *)
  let prog = Pipeline.load_source source in
  let ctx = Cobegin_semantics.Step.make_ctx prog in
  let full = Cobegin_explore.Space.full ctx in
  let stub = Cobegin_explore.Stubborn.explore ctx in
  Format.printf "=== engines ===@.";
  Format.printf "full interleaving: %a@." Cobegin_explore.Space.pp_stats
    full.Cobegin_explore.Space.stats;
  Format.printf "stubborn sets:     %a@." Cobegin_explore.Space.pp_stats
    stub.Cobegin_explore.Space.stats;

  (* 3. The final stores are exactly Figure 2's sequential-consistency
     outcome set: (x,y) takes three of the four values — never (0,0). *)
  let outcomes =
    List.filter_map
      (fun (c : Cobegin_semantics.Config.t) ->
        let bindings = Cobegin_semantics.Store.bindings c.Cobegin_semantics.Config.store in
        let nth n =
          match List.nth_opt bindings n with
          | Some (_, Cobegin_semantics.Value.Vint v) -> Some v
          | _ -> None
        in
        (* declaration order: a b x y *)
        match (nth 2, nth 3) with
        | Some x, Some y -> Some (x, y)
        | _ -> None)
      full.Cobegin_explore.Space.final_configs
    |> List.sort_uniq compare
  in
  Format.printf "@.final (x, y) outcomes: %s@."
    (String.concat ", "
       (List.map (fun (x, y) -> Printf.sprintf "(%d,%d)" x y) outcomes));
  assert (not (List.mem (0, 0) outcomes))
