(* coanalyze — command-line front end to the framework.

   Subcommands:
     analyze   run an engine on a source file and print the full report
     explore   just the state-space statistics (full vs stubborn vs both)
     races     co-enabledness race scan
     parallel  Shasha–Snir style parallelization report
     examples  print a named built-in example program

   Examples:
     coanalyze analyze prog.cob --engine stubborn --coarsen
     coanalyze analyze prog.cob --engine abstract --domain signs --folding clan
     coanalyze explore prog.cob
     coanalyze examples fig8 | coanalyze parallel /dev/stdin *)

open Cmdliner
open Cobegin_core
open Cobegin_absint

let read_program path =
  try Ok (Pipeline.load_file path) with
  | Cobegin_lang.Parser.Error (msg, pos) ->
      Error
        (Format.asprintf "%a" Cobegin_lang.Parser.pp_error (msg, pos))
  | Cobegin_lang.Check.Ill_formed diags ->
      Error
        (Format.asprintf "@[<v>%a@]"
           (Format.pp_print_list Cobegin_lang.Check.pp_diagnostic)
           diags)
  | Sys_error e -> Error e

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Source file in the cobegin language.")

let engine_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "full" -> Ok Pipeline.Concrete_full
    | "stubborn" -> Ok Pipeline.Concrete_stubborn
    | "abstract" -> Ok (Pipeline.Abstract (Analyzer.Intervals, Machine.Control))
    | _ -> Error (`Msg "engine must be full, stubborn, or abstract")
  in
  let print ppf e = Pipeline.pp_engine ppf e in
  Arg.(
    value
    & opt (conv (parse, print)) Pipeline.Concrete_full
    & info [ "engine"; "e" ] ~docv:"ENGINE"
        ~doc:"Exploration engine: $(b,full), $(b,stubborn) or $(b,abstract).")

let domain_arg =
  let parse s =
    match Analyzer.domain_of_string s with
    | Some d -> Ok d
    | None -> Error (`Msg "domain must be intervals, constants, signs or parity")
  in
  Arg.(
    value
    & opt (conv (parse, Analyzer.pp_domain)) Analyzer.Intervals
    & info [ "domain" ] ~docv:"DOMAIN"
        ~doc:
          "Numeric domain for the abstract engine: $(b,intervals), \
           $(b,constants), $(b,signs), $(b,parity).")

let folding_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "exact" -> Ok Machine.Exact
    | "control" | "taylor" -> Ok Machine.Control
    | "clan" | "mcdowell" -> Ok Machine.Clan
    | _ -> Error (`Msg "folding must be exact, control or clan")
  in
  Arg.(
    value
    & opt (conv (parse, Machine.pp_folding)) Machine.Control
    & info [ "folding" ] ~docv:"FOLDING"
        ~doc:
          "Configuration folding for the abstract engine: $(b,exact), \
           $(b,control) (Taylor) or $(b,clan) (McDowell).")

let coarsen_arg =
  Arg.(
    value & flag
    & info [ "coarsen" ]
        ~doc:"Apply virtual coarsening (Observation 5) before exploring.")

let inline_arg =
  Arg.(
    value & flag
    & info [ "inline" ] ~doc:"Inline non-recursive procedure calls first.")

let races_arg =
  Arg.(
    value & flag
    & info [ "races" ] ~doc:"Also run the co-enabledness race scan.")

let max_configs_arg =
  Arg.(
    value & opt int 500_000
    & info [ "max-configs" ] ~docv:"N"
        ~doc:"Exploration budget (configurations).")

let mk_options engine domain folding coarsen inline races max_configs =
  let engine =
    match engine with
    | Pipeline.Abstract _ -> Pipeline.Abstract (domain, folding)
    | e -> e
  in
  {
    Pipeline.engine;
    coarsen;
    inline;
    max_configs;
    find_races = races;
  }

let options_term =
  Term.(
    const mk_options $ engine_arg $ domain_arg $ folding_arg $ coarsen_arg
    $ inline_arg $ races_arg $ max_configs_arg)

let handle_budget f =
  try f () with
  | Cobegin_explore.Space.Budget_exceeded n ->
      Error (Printf.sprintf "state budget exceeded (%d configurations)" n)
  | Machine.Budget_exceeded n ->
      Error (Printf.sprintf "abstract state budget exceeded (%d)" n)

let analyze_cmd =
  let run file options =
    match read_program file with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok prog -> (
        match
          handle_budget (fun () ->
              Ok (Pipeline.analyze ~options prog))
        with
        | Error e ->
            Format.eprintf "%s@." e;
            1
        | Ok report ->
            Format.printf "%a@." Pipeline.pp_report report;
            0)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the full analysis pipeline on a program.")
    Term.(const run $ file_arg $ options_term)

let explore_cmd =
  let run file coarsen max_configs =
    match read_program file with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok prog -> (
        match
          handle_budget (fun () ->
              let prog =
                if coarsen then Cobegin_trans.Coarsen.program prog else prog
              in
              let ctx = Cobegin_semantics.Step.make_ctx prog in
              let full =
                Cobegin_explore.Space.full ~max_configs ctx
              in
              let stats = Cobegin_explore.Stubborn.new_stats () in
              let stub =
                Cobegin_explore.Stubborn.explore ~max_configs ~stats ctx
              in
              Format.printf "full:     %a@." Cobegin_explore.Space.pp_stats
                full.Cobegin_explore.Space.stats;
              Format.printf "stubborn: %a@." Cobegin_explore.Space.pp_stats
                stub.Cobegin_explore.Space.stats;
              let slp = Cobegin_explore.Sleep.explore ~max_configs ctx in
              Format.printf "sleep:    %a@." Cobegin_explore.Space.pp_stats
                slp.Cobegin_explore.Space.stats;
              Format.printf
                "stubborn expansions: singleton=%d component=%d full=%d@."
                stats.Cobegin_explore.Stubborn.singleton_expansions
                stats.component_expansions stats.full_expansions;
              Format.printf "final stores agree: %b@."
                (Cobegin_explore.Space.final_store_reprs full
                = Cobegin_explore.Space.final_store_reprs stub);
              Ok ())
        with
        | Error e ->
            Format.eprintf "%s@." e;
            1
        | Ok () -> 0)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Compare full and stubborn-set state-space generation.")
    Term.(const run $ file_arg $ coarsen_arg $ max_configs_arg)

let races_cmd =
  let run file max_configs =
    match read_program file with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok prog ->
        let ctx = Cobegin_semantics.Step.make_ctx prog in
        let races =
          Cobegin_analysis.Race.find ~max_configs ctx
        in
        Format.printf "%a@." Cobegin_analysis.Race.pp races;
        if Cobegin_analysis.Race.RaceSet.is_empty races then 0 else 2
  in
  Cmd.v
    (Cmd.info "races" ~doc:"Detect access anomalies by co-enabledness.")
    Term.(const run $ file_arg $ max_configs_arg)

let parallel_cmd =
  let run file options =
    match read_program file with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok prog -> (
        match
          handle_budget (fun () ->
              let report = Pipeline.analyze ~options prog in
              Ok (Pipeline.parallelization report))
        with
        | Error e ->
            Format.eprintf "%s@." e;
            1
        | Ok par ->
            Format.printf "%a@." Cobegin_apps.Parallelize.pp_report par;
            0)
  in
  Cmd.v
    (Cmd.info "parallel"
       ~doc:"Shasha–Snir delay/parallelization report for segment programs.")
    Term.(const run $ file_arg $ options_term)

let examples_cmd =
  let all =
    Cobegin_models.Figures.all_named @ Cobegin_models.Protocols.all_named
  in
  let run name =
    match List.assoc_opt name all with
    | Some src ->
        print_string src;
        0
    | None ->
        Format.eprintf "unknown example %s; available: %s@." name
          (String.concat ", " (List.map fst all));
        1
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Example name (fig2, fig5, example8, ...).")
  in
  Cmd.v
    (Cmd.info "examples" ~doc:"Print a built-in example program.")
    Term.(const run $ name_arg)

let main_cmd =
  let doc =
    "static analysis of shared-memory cobegin programs by state-space \
     exploration, stubborn sets and abstract interpretation (Chow & \
     Harrison, ICPP 1992)"
  in
  Cmd.group
    (Cmd.info "coanalyze" ~version:"1.0.0" ~doc)
    [ analyze_cmd; explore_cmd; races_cmd; parallel_cmd; examples_cmd ]

let () = exit (Cmd.eval' main_cmd)
