(* corun — execute cobegin programs directly (no analysis):

     corun prog.cob                     leftmost deterministic schedule
     corun prog.cob --sched random --seed 7
     corun prog.cob --sched round-robin --trace
     corun prog.cob --witness-error     search + replay an error schedule

   Useful for trying out the language and for demonstrating that a
   schedule found by the explorer really happens. *)

open Cmdliner
open Cobegin_semantics

let read_program path =
  try Ok (Cobegin_core.Pipeline.load_file path) with
  | Cobegin_lang.Parser.Error (msg, pos) ->
      Error (Format.asprintf "%a" Cobegin_lang.Parser.pp_error (msg, pos))
  | Cobegin_lang.Lexer.Error (msg, pos) ->
      Error
        (Format.asprintf "%a" Cobegin_lang.Parser.pp_error
           ("lexical error: " ^ msg, pos))
  | Cobegin_lang.Check.Ill_formed diags ->
      Error
        (Format.asprintf "@[<v>%a@]"
           (Format.pp_print_list Cobegin_lang.Check.pp_diagnostic)
           diags)
  | Sys_error e -> Error e

type sched = Leftmost | Random | Round_robin

let sched_conv =
  let parse = function
    | "leftmost" -> Ok Leftmost
    | "random" -> Ok Random
    | "round-robin" | "rr" -> Ok Round_robin
    | _ -> Error (`Msg "scheduler must be leftmost, random or round-robin")
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | Leftmost -> "leftmost"
      | Random -> "random"
      | Round_robin -> "round-robin")
  in
  Arg.conv (parse, print)

let pp_outcome ppf = function
  | Exec.Terminated c ->
      Format.fprintf ppf "terminated.@.final store:@.%a" Store.pp
        c.Config.store
  | Exec.Error (msg, _) -> Format.fprintf ppf "runtime error: %s" msg
  | Exec.Deadlock c ->
      Format.fprintf ppf "deadlock with %d blocked process(es)"
        (Config.num_procs c)
  | Exec.Out_of_fuel _ -> Format.fprintf ppf "step budget exhausted"

let run_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Program to execute.")
  in
  let sched =
    Arg.(
      value & opt sched_conv Leftmost
      & info [ "sched"; "s" ] ~docv:"SCHED"
          ~doc:"Scheduler: $(b,leftmost), $(b,random) or $(b,round-robin).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Seed for the random scheduler.")
  in
  let fuel =
    Arg.(
      value & opt int 100_000
      & info [ "fuel" ] ~docv:"N" ~doc:"Maximum number of steps.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Print the pid fired at every step.")
  in
  let witness_error =
    Arg.(
      value & flag
      & info [ "witness-error" ]
          ~doc:
            "Search the state space for an error, print the schedule \
             reaching it, replay it, and exit 2 if one exists.")
  in
  let run file sched seed fuel trace witness_error =
    match read_program file with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok prog ->
        let ctx = Step.make_ctx prog in
        if witness_error then begin
          match Cobegin_explore.Trace.error_witness ctx with
          | None ->
              Format.printf "no error reachable@.";
              0
          | Some w -> (
              Format.printf "%a@." Cobegin_explore.Trace.pp_witness w;
              match Replay.replay ctx w.Cobegin_explore.Trace.schedule with
              | Replay.Replayed c when Config.is_error c ->
                  Format.printf "replayed: %s@."
                    (Option.get c.Config.error);
                  2
              | Replay.Replayed _ ->
                  Format.eprintf "internal: witness did not replay@.";
                  1
              | Replay.Stuck (e, _) ->
                  Format.eprintf "internal: %a@." Replay.pp_step_error e;
                  1)
        end
        else begin
          let r =
            match sched with
            | Leftmost -> Exec.run_leftmost ~max_steps:fuel ctx
            | Random -> Exec.run_random ~max_steps:fuel ctx ~seed
            | Round_robin -> Exec.run_round_robin ~max_steps:fuel ctx
          in
          if trace then
            List.iter
              (fun e ->
                Format.printf "→ %a@." Value.pp_pid e.Exec.chosen)
              (List.rev r.Exec.trace);
          Format.printf "%a@." pp_outcome r.Exec.outcome;
          match r.Exec.outcome with
          | Exec.Terminated _ -> 0
          | Exec.Error _ -> 2
          | Exec.Deadlock _ -> 3
          | Exec.Out_of_fuel _ -> 4
        end
  in
  Cmd.v
    (Cmd.info "corun" ~version:"1.0.0"
       ~doc:"execute cobegin programs under a chosen scheduler")
    Term.(
      const run $ file $ sched $ seed $ fuel $ trace $ witness_error)

let () = exit (Cmd.eval' run_cmd)
