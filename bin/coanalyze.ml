(* coanalyze — command-line front end to the framework.

   Subcommands:
     analyze   run an engine on a source file and print the full report
     explore   just the state-space statistics (full vs stubborn vs both)
     races     co-enabledness race scan
     interfere thread-modular interference analysis (rely-guarantee)
     parallel  Shasha–Snir style parallelization report
     examples  print a named built-in example program

   Exit codes (analyze / explore / races / parallel):
     0  analysis ran to completion
     1  usage, parse or static errors
     2  a resource budget fired — the printed results are partial
     3  an analysis stage crashed (structured diagnostic printed)
     4  clean run, but the static lint suite has findings
        (--lint / --lint-only)
     5  DEGRADED: the supervisor exhausted its recovery ladder and the
        report is an honest partial result
        (precedence 1 > 5 > 3 > 2 > 4 > 0)

   Examples:
     coanalyze analyze prog.cob --engine stubborn --coarsen
     coanalyze analyze prog.cob --lint-only
     coanalyze analyze prog.cob --engine abstract --domain signs --folding clan
     coanalyze analyze prog.cob --jobs 4 --chaos kill@worker1:5
     coanalyze explore prog.cob --max-configs 1000 --timeout 5
     coanalyze explore prog.cob --checkpoint run.ckpt --checkpoint-every 500
     coanalyze explore prog.cob --resume run.ckpt
     coanalyze examples fig8 | coanalyze parallel /dev/stdin *)

open Cmdliner
open Cobegin_core
open Cobegin_absint

let read_program path =
  try Ok (Pipeline.load_file path) with
  | Cobegin_lang.Parser.Error (msg, pos) ->
      Error
        (Format.asprintf "%a" Cobegin_lang.Parser.pp_error (msg, pos))
  | Cobegin_lang.Lexer.Error (msg, pos) ->
      (* load_file folds lexer errors into Parser.Error; this arm covers
         any that escape a different path *)
      Error
        (Format.asprintf "%a" Cobegin_lang.Parser.pp_error
           ("lexical error: " ^ msg, pos))
  | Cobegin_lang.Check.Ill_formed diags ->
      Error
        (Format.asprintf "@[<v>%a@]"
           (Format.pp_print_list Cobegin_lang.Check.pp_diagnostic)
           diags)
  | Sys_error e -> Error e

(* The truncation banner and the exit-code convention shared by every
   analysis subcommand.  The banner carries the wall time and the peak
   heap so a truncated run is diagnosable from the CLI alone. *)
let report_status ~t0 status =
  match status with
  | Budget.Complete -> ()
  | Budget.Truncated reason ->
      let elapsed = Unix.gettimeofday () -. t0 in
      (* Gc.stat, not quick_stat: the OCaml 5 runtime leaves quick_stat's
         top_heap_words at 0 until a major collection has run, and one
         full stat at the end of a truncated run is cheap *)
      let peak_mb =
        float_of_int ((Gc.stat ()).Gc.top_heap_words * (Sys.word_size / 8))
        /. (1024. *. 1024.)
      in
      Format.eprintf
        "TRUNCATED (%s) — results below are partial (elapsed %.1fs, peak \
         heap %.1f MB)@."
        (Budget.reason_to_string reason)
        elapsed peak_mb

(* --- telemetry plumbing (--trace / --metrics / --progress) --- *)

module Obs = Cobegin_obs

(* Intern-pool sizes for probe samples: injected here because Cobegin_obs
   sits below Cobegin_semantics in the library graph. *)
let telemetry_pools () =
  let st = Cobegin_semantics.Intern.global () in
  [
    ("procs", Cobegin_semantics.Intern.distinct_procs st);
    ("stores", Cobegin_semantics.Intern.distinct_stores st);
  ]

let make_probe ~progress =
  if progress then
    Some (Obs.Probe.make ~pools:telemetry_pools Obs.Probe.stderr_sink)
  else None

(* Final metrics snapshot, stamped with the run's wall time and peak
   heap, as one JSON object. *)
let write_metrics path ~t0 =
  Obs.Metrics.set
    (Obs.Metrics.gauge "run.elapsed_ms")
    (int_of_float ((Unix.gettimeofday () -. t0) *. 1000.));
  (* Gc.stat: quick_stat's top_heap_words stays 0 until a major GC *)
  Obs.Metrics.set
    (Obs.Metrics.gauge "run.peak_heap_words")
    (Gc.stat ()).Gc.top_heap_words;
  let oc = open_out path in
  output_string oc (Obs.Metrics.to_json (Obs.Metrics.snapshot ()));
  output_char oc '\n';
  close_out oc

(* Exit-code policy (1 > 5 > 3 > 2 > 4 > 0) lives in Pipeline, where
   the tests can exercise it directly. *)
let exit_code = Pipeline.exit_code

(* --- chaos plumbing (--chaos / COBEGIN_CHAOS) --- *)

(* The flag wins over the env var; the installed plan is echoed on
   stderr in its canonical spelling so every chaos run is replayable
   from its own output. *)
let install_chaos chaos =
  let apply ~origin s =
    match Fault.parse s with
    | Ok plan ->
        Fault.install plan;
        Format.eprintf "chaos plan active (%s): %s@." origin
          (Fault.to_spec plan);
        Ok ()
    | Error e -> Error (Printf.sprintf "bad chaos spec (%s): %s" origin e)
  in
  match chaos with
  | Some s -> apply ~origin:"--chaos" s
  | None -> (
      match Sys.getenv_opt Fault.env_var with
      | Some s when String.trim s <> "" -> apply ~origin:Fault.env_var s
      | _ -> Ok ())

(* A raising engine fault that escaped every supervisor (the bare
   explore/races subcommands run engines directly): print a structured
   diagnostic instead of an uncaught-exception abort. *)
let structured_fault = function
  | (Fault.Injected _ | Out_of_memory) as e -> Some (Printexc.to_string e)
  | Cobegin_explore.Parallel.Worker_failed _ as e ->
      Some (Printexc.to_string e)
  | _ -> None

(* Recovery ladder + DEGRADED banner on stderr (analyze/parallel). *)
let report_recovery (report : Pipeline.report) =
  List.iter
    (fun r ->
      Format.eprintf "recovery: %a@." Pipeline.pp_recovery_rung r)
    report.Pipeline.recovery;
  if report.Pipeline.degraded then
    Format.eprintf
      "DEGRADED — the recovery ladder was exhausted; the results above \
       are an honest partial report (exit code 5)@."

let print_backtraces ~debug (report : Pipeline.report) =
  if debug then
    List.iter
      (fun (f : Pipeline.stage_failure) ->
        match f.Pipeline.backtrace with
        | Some bt ->
            Format.eprintf "backtrace (%s):@.%s@." f.Pipeline.stage bt
        | None -> ())
      report.Pipeline.stage_failures

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Source file in the cobegin language.")

let engine_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "full" -> Ok Pipeline.Concrete_full
    | "stubborn" -> Ok Pipeline.Concrete_stubborn
    | "abstract" -> Ok (Pipeline.Abstract (Analyzer.Intervals, Machine.Control))
    | _ -> Error (`Msg "engine must be full, stubborn, or abstract")
  in
  let print ppf e = Pipeline.pp_engine ppf e in
  Arg.(
    value
    & opt (conv (parse, print)) Pipeline.Concrete_full
    & info [ "engine"; "e" ] ~docv:"ENGINE"
        ~doc:"Exploration engine: $(b,full), $(b,stubborn) or $(b,abstract).")

let domain_arg =
  let parse s =
    match Analyzer.domain_of_string s with
    | Some d -> Ok d
    | None -> Error (`Msg "domain must be intervals, constants, signs or parity")
  in
  Arg.(
    value
    & opt (conv (parse, Analyzer.pp_domain)) Analyzer.Intervals
    & info [ "domain" ] ~docv:"DOMAIN"
        ~doc:
          "Numeric domain for the abstract engine: $(b,intervals), \
           $(b,constants), $(b,signs), $(b,parity).")

let folding_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "exact" -> Ok Machine.Exact
    | "control" | "taylor" -> Ok Machine.Control
    | "clan" | "mcdowell" -> Ok Machine.Clan
    | _ -> Error (`Msg "folding must be exact, control or clan")
  in
  Arg.(
    value
    & opt (conv (parse, Machine.pp_folding)) Machine.Control
    & info [ "folding" ] ~docv:"FOLDING"
        ~doc:
          "Configuration folding for the abstract engine: $(b,exact), \
           $(b,control) (Taylor) or $(b,clan) (McDowell).")

let coarsen_arg =
  Arg.(
    value & flag
    & info [ "coarsen" ]
        ~doc:"Apply virtual coarsening (Observation 5) before exploring.")

let inline_arg =
  Arg.(
    value & flag
    & info [ "inline" ] ~doc:"Inline non-recursive procedure calls first.")

let races_arg =
  Arg.(
    value & flag
    & info [ "races" ] ~doc:"Also run the co-enabledness race scan.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Also run the static concurrency lint suite (MHP, locksets, \
           lock-order cycles) as a budget-free pre-stage.  Findings make \
           the exit code 4.")

let interfere_arg =
  Arg.(
    value & flag
    & info [ "interfere" ]
        ~doc:
          "Also run the thread-modular interference analysis \
           (rely-guarantee abstract interpretation) as a supervised \
           pipeline stage.")

let lint_only_arg =
  Arg.(
    value & flag
    & info [ "lint-only" ]
        ~doc:
          "Run only the static lint suite — no exploration, no budget.  \
           Exit code 4 when there are findings, 0 otherwise.")

let memory_model_conv =
  let parse s =
    match Cobegin_semantics.Step.model_of_string s with
    | Some m -> Ok m
    | None ->
        Error (`Msg (Printf.sprintf "unknown memory model %S (sc|tso|pso)" s))
  in
  Arg.conv
    ( parse,
      fun ppf m ->
        Format.pp_print_string ppf (Cobegin_semantics.Step.model_name m) )

let memory_model_arg =
  Arg.(
    value
    & opt memory_model_conv Cobegin_semantics.Step.Sc
    & info [ "memory-model" ] ~docv:"MODEL"
        ~doc:
          "Memory model of the concrete semantics: $(b,sc) (default, the            paper's interleaving semantics), $(b,tso) (per-process FIFO            store buffers, only the oldest write may flush) or $(b,pso)            (the oldest write per location may flush, so stores to            distinct locations reorder).  Under tso/pso plain assignments            buffer and publish via nondeterministic flush transitions;            $(b,fence)/$(b,atomic)/$(b,lock)/$(b,unlock) wait for the            issuing process's buffer to drain.  The abstract engine and            $(b,--interfere) model SC only and refuse tso/pso.")

let max_configs_arg =
  Arg.(
    value & opt int 500_000
    & info [ "max-configs" ] ~docv:"N"
        ~doc:"Exploration budget (configurations).")

let max_transitions_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-transitions" ] ~docv:"N"
        ~doc:"Exploration budget (fired transitions).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock deadline for the whole run, in seconds.  On expiry \
           the partial results are printed and the exit code is 2.")

let max_heap_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-heap-mb" ] ~docv:"MB"
        ~doc:
          "Truncate the run when the OCaml major heap exceeds this many \
           megabytes.")

let heap_words_of_mb mb =
  (* OCaml heap words: 8 bytes each on 64-bit *)
  mb * 1024 * 1024 / (Sys.word_size / 8)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Explore on $(docv) OCaml domains (concrete full engine only; \
           default 1 = the sequential engine).  Complete runs produce the \
           same configuration/transition counts and final stores as the \
           sequential engine.")

let retries_arg =
  Arg.(
    value & opt int 1
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra attempts the supervisor grants a crashed pipeline stage \
           (default 1).  Exploration walks its degradation ladder \
           ($(b,--jobs) N, then 1 domain) before same-options retries.  \
           0 disables retrying.")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Install a deterministic fault plan before running, e.g. \
           $(b,crash\\@space.pop:100,kill\\@worker1:5,seed=7).  Overrides \
           the $(b,COBEGIN_CHAOS) environment variable.  The canonical \
           plan is echoed on stderr so any chaos run is replayable.")

let debug_arg =
  Arg.(
    value & flag
    & info [ "debug" ]
        ~doc:
          "Record exception backtraces and print them for every stage \
           failure.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file with one span per \
           pipeline stage.  Load it in chrome://tracing or Perfetto.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable telemetry counters and write the final metrics \
           snapshot (counters, gauges, histograms) as JSON.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Emit live progress heartbeats on stderr (frontier size, \
           visited count, rate, heap, budget headroom).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the full report as one JSON object to $(docv); $(b,-) \
           writes it to stdout in place of the text report.  The schema \
           is versioned ($(b,format_version)) and deterministic: two \
           identical runs emit identical bytes.  The exit code is the \
           same as in text mode and is embedded in the object.")

let log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:
          "Write the structured event journal to $(docv) as JSON lines \
           (one event per line), filtered by $(b,--log-level).  Stage \
           crashes, injected faults and recovery rungs additionally dump \
           the in-memory flight recorder — the last ~256 events of every \
           level — into the log, bypassing the threshold.")

let log_level_arg =
  let parse s =
    match Obs.Journal.level_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg "log level must be debug, info, warn or error")
  in
  let print ppf l = Format.pp_print_string ppf (Obs.Journal.level_name l) in
  Arg.(
    value
    & opt (conv (parse, print)) Obs.Journal.Info
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Sink threshold for $(b,--log): $(b,debug), $(b,info) (the \
           default), $(b,warn) or $(b,error).  The flight-recorder ring \
           records every level regardless of the threshold.")

let manifest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "manifest" ] ~docv:"FILE"
        ~doc:
          "Write a digest-addressed run manifest to $(docv): one JSON \
           record keyed by program digest × canonical options \
           fingerprint × memory model × format version, carrying the \
           status, exit code, wall time, metrics snapshot (with \
           $(b,--metrics)) and chaos provenance.  Two runs with the \
           same key computed the same analysis — the key a result \
           cache looks up.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "($(b,explore)) Run the checkpointed sequential full engine, \
           serializing the in-flight state to $(docv) at the configured \
           cadence.  Writes are atomic; a killed run resumes with \
           $(b,--resume) and reports the same final counts as one that \
           was never killed.")

let checkpoint_every_arg =
  Arg.(
    value & opt int 4096
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Checkpoint cadence in worklist pops (default 4096).")

let checkpoint_secs_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "checkpoint-secs" ] ~docv:"SECS"
        ~doc:"Additionally checkpoint every $(docv) seconds of wall time.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "($(b,explore)) Load the checkpoint at $(docv) (written for \
           the same program) and continue it, checkpointing onward to \
           the same file.")

let mk_options engine domain folding memory_model coarsen inline races lint
    interfere max_configs max_transitions timeout_s max_heap_mb jobs retries
    =
  let engine =
    match engine with
    | Pipeline.Abstract _ -> Pipeline.Abstract (domain, folding)
    | e -> e
  in
  {
    Pipeline.engine;
    memory_model;
    coarsen;
    inline;
    max_configs;
    max_transitions;
    timeout_s;
    max_heap_words = Option.map heap_words_of_mb max_heap_mb;
    find_races = races;
    lint;
    interfere;
    jobs = max 1 jobs;
    retries = max 0 retries;
  }

let options_term =
  Term.(
    const mk_options $ engine_arg $ domain_arg $ folding_arg
    $ memory_model_arg $ coarsen_arg $ inline_arg $ races_arg $ lint_arg
    $ interfere_arg $ max_configs_arg $ max_transitions_arg $ timeout_arg
    $ max_heap_mb_arg $ jobs_arg $ retries_arg)

let analyze_cmd =
  let run file options lint_only json log log_level manifest trace metrics
      progress chaos debug =
    match install_chaos chaos with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok () -> (
        if debug then Printexc.record_backtrace true;
        match read_program file with
        | Error e ->
            Format.eprintf "%s@." e;
            1
        | Ok prog ->
            if lint_only then begin
              (* static suite alone: no exploration, no budget; the
                 canonical-order self-check makes non-canonical output a
                 crash the CI sweep catches *)
              let r = Cobegin_static.Lint.run prog in
              Cobegin_static.Report.assert_canonical
                r.Cobegin_static.Lint.findings;
              Format.printf "%a@." Cobegin_static.Lint.pp r;
              if r.Cobegin_static.Lint.findings <> [] then 4 else 0
            end
            else begin
              let t0 = Unix.gettimeofday () in
              if metrics <> None then Obs.Metrics.set_enabled true;
              (* The journal runs whenever a log sink is requested —
                 and also, ring-only, when a JSON report is: a crashed
                 stage then carries its flight-recorder dump even
                 without --log. *)
              let log_oc = Option.map open_out log in
              if log_oc <> None || json <> None then
                Obs.Journal.start ~threshold:log_level ?sink:log_oc ();
              let finish code =
                Obs.Journal.stop ();
                Option.iter close_out log_oc;
                code
              in
              let spans =
                match trace with
                | None -> None
                | Some _ -> Some (Obs.Span.create ())
              in
              let probe = make_probe ~progress in
              match Pipeline.analyze ~options ?spans ?probe prog with
              | exception Invalid_argument msg ->
                  (* SC-only engine/analysis under --memory-model tso/pso *)
                  Format.eprintf "%s@." msg;
                  finish 1
              | report ->
              (* --json - replaces the text report on stdout (stderr
                 still carries the banners); --json FILE keeps both *)
              (match json with
              | Some "-" -> ()
              | None | Some _ ->
                  Format.printf "%a@." Pipeline.pp_report report);
              List.iter
                (fun f -> Format.eprintf "%a@." Pipeline.pp_stage_failure f)
                report.Pipeline.stage_failures;
              print_backtraces ~debug report;
              report_recovery report;
              (match (trace, spans) with
              | Some path, Some t -> Obs.Span.write_trace t path
              | _ -> ());
              Option.iter (fun path -> write_metrics path ~t0) metrics;
              report_status ~t0 report.Pipeline.status;
              (match json with
              | None -> ()
              | Some "-" ->
                  print_string (Report.to_json report);
                  print_newline ()
              | Some path ->
                  let oc = open_out path in
                  output_string oc (Report.to_json report);
                  output_char oc '\n';
                  close_out oc);
              let static_findings =
                match report.Pipeline.static with
                | Some r -> r.Cobegin_static.Lint.findings <> []
                | None -> false
              in
              let code =
                exit_code ~stage_failures:report.Pipeline.stage_failures
                  ~static_findings ~degraded:report.Pipeline.degraded
                  report.Pipeline.status
              in
              (match manifest with
              | None -> ()
              | Some path ->
                  let metrics_json =
                    if metrics <> None then
                      Some (Obs.Metrics.to_json (Obs.Metrics.snapshot ()))
                    else None
                  in
                  let m =
                    Obs.Manifest.make
                      ~program_digest:
                        (Report.program_digest report.Pipeline.program)
                      ~options_fingerprint:
                        (Pipeline.options_fingerprint options)
                      ~memory_model:
                        (Cobegin_semantics.Step.model_name
                           options.Pipeline.memory_model)
                      ~status:
                        (Budget.status_to_string report.Pipeline.status)
                      ~exit_code:code
                      ~elapsed_s:(Unix.gettimeofday () -. t0)
                      ?metrics:metrics_json
                      ?chaos:(Option.map Fault.to_spec (Fault.installed ()))
                      ()
                  in
                  Obs.Manifest.write m path);
              finish code
            end)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the full analysis pipeline on a program.")
    Term.(
      const run $ file_arg $ options_term $ lint_only_arg $ json_arg
      $ log_arg $ log_level_arg $ manifest_arg $ trace_arg $ metrics_arg
      $ progress_arg $ chaos_arg $ debug_arg)

let explore_cmd =
  let run file memory_model coarsen max_configs max_transitions timeout_s
      max_heap_mb jobs metrics progress chaos ckpt ckpt_every ckpt_secs
      resume_path =
    match install_chaos chaos with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok () -> (
    match read_program file with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok prog -> (
        let t0 = Unix.gettimeofday () in
        if metrics <> None then Obs.Metrics.set_enabled true;
        let probe = make_probe ~progress in
        let prog =
          if coarsen then Cobegin_trans.Coarsen.program prog else prog
        in
        let ctx =
          Cobegin_semantics.Step.make_ctx ~model:memory_model prog
        in
        (* a fresh budget per engine run so the counters start at zero;
           the probe follows the budget of the engine currently running *)
        let budget ?(shared = false) () =
          let b =
            Budget.create ~max_configs ?max_transitions ?timeout_s
              ?max_heap_words:(Option.map heap_words_of_mb max_heap_mb)
              ~shared ()
          in
          Option.iter (fun p -> Obs.Probe.set_budget p b) probe;
          b
        in
        let rec body () =
          match (resume_path, ckpt) with
          | Some path, _ | None, Some path ->
              (* checkpoint mode: the checkpointed sequential full engine
                 only, printing the same "full:" row as the comparison
                 mode so a resumed run's counts diff cleanly against an
                 uninterrupted one *)
              let cadence =
                {
                  Cobegin_explore.Checkpoint.every_configs =
                    max 1 ckpt_every;
                  every_s = ckpt_secs;
                }
              in
              let engine =
                if resume_path <> None then Cobegin_explore.Checkpoint.resume
                else Cobegin_explore.Checkpoint.full
              in
              let r = engine ~budget:(budget ()) ?probe ~cadence ~path ctx in
              Format.printf "full:     %a@." Cobegin_explore.Space.pp_stats
                r.Cobegin_explore.Space.stats;
              Option.iter (fun path -> write_metrics path ~t0) metrics;
              report_status ~t0 r.Cobegin_explore.Space.status;
              exit_code r.Cobegin_explore.Space.status
          | None, None -> run_comparison ()
        and run_comparison () =
        let full =
          Cobegin_explore.Space.full ~budget:(budget ()) ?probe ctx
        in
        let stats = Cobegin_explore.Stubborn.new_stats () in
        let stub =
          Cobegin_explore.Stubborn.explore ~budget:(budget ()) ?probe ~stats
            ctx
        in
        Format.printf "full:     %a@." Cobegin_explore.Space.pp_stats
          full.Cobegin_explore.Space.stats;
        Format.printf "stubborn: %a@." Cobegin_explore.Space.pp_stats
          stub.Cobegin_explore.Space.stats;
        let slp =
          Cobegin_explore.Sleep.explore ~budget:(budget ()) ?probe ctx
        in
        Format.printf "sleep:    %a@." Cobegin_explore.Space.pp_stats
          slp.Cobegin_explore.Space.stats;
        let par =
          if jobs > 1 then begin
            let p =
              Cobegin_explore.Parallel.full ~jobs
                ~budget:(budget ~shared:true ()) ?probe ctx
            in
            Format.printf "parallel (%d domains): %a@." jobs
              Cobegin_explore.Space.pp_stats p.Cobegin_explore.Space.stats;
            Some p
          end
          else None
        in
        Format.printf
          "stubborn expansions: singleton=%d component=%d full=%d@."
          stats.Cobegin_explore.Stubborn.singleton_expansions
          stats.component_expansions stats.full_expansions;
        let status =
          Budget.combine full.Cobegin_explore.Space.status
            (Budget.combine stub.Cobegin_explore.Space.status
               (Budget.combine slp.Cobegin_explore.Space.status
                  (match par with
                  | Some p -> p.Cobegin_explore.Space.status
                  | None -> Budget.Complete)))
        in
        if Budget.is_complete status then begin
          Format.printf "final stores agree: %b@."
            (Cobegin_explore.Space.final_store_reprs full
            = Cobegin_explore.Space.final_store_reprs stub);
          match par with
          | None -> ()
          | Some p ->
              let s = full.Cobegin_explore.Space.stats
              and q = p.Cobegin_explore.Space.stats in
              Format.printf "sequential/parallel agree: %b@."
                (s.Cobegin_explore.Space.configurations
                 = q.Cobegin_explore.Space.configurations
                && s.Cobegin_explore.Space.transitions
                   = q.Cobegin_explore.Space.transitions
                && Cobegin_explore.Space.final_store_reprs full
                   = Cobegin_explore.Space.final_store_reprs p)
        end;
        Option.iter (fun path -> write_metrics path ~t0) metrics;
        report_status ~t0 status;
        exit_code status
        in
        match body () with
        | code -> code
        | exception Cobegin_explore.Checkpoint.Corrupt msg ->
            Format.eprintf "checkpoint: %s@." msg;
            1
        | exception e when structured_fault e <> None -> (
            match structured_fault e with
            | Some d ->
                Format.eprintf "aborted by injected fault: %s@." d;
                3
            | None -> assert false)))
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Compare full and stubborn-set state-space generation.")
    Term.(
      const run $ file_arg $ memory_model_arg $ coarsen_arg
      $ max_configs_arg $ max_transitions_arg $ timeout_arg
      $ max_heap_mb_arg $ jobs_arg $ metrics_arg $ progress_arg $ chaos_arg
      $ checkpoint_arg $ checkpoint_every_arg $ checkpoint_secs_arg
      $ resume_arg)

let races_cmd =
  let run file memory_model max_configs max_transitions timeout_s
      max_heap_mb metrics progress chaos =
    match install_chaos chaos with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok () -> (
        match read_program file with
        | Error e ->
            Format.eprintf "%s@." e;
            1
        | Ok prog -> (
            let t0 = Unix.gettimeofday () in
            if metrics <> None then Obs.Metrics.set_enabled true;
            let ctx =
              Cobegin_semantics.Step.make_ctx ~model:memory_model prog
            in
            let budget =
              Budget.create ~max_configs ?max_transitions ?timeout_s
                ?max_heap_words:(Option.map heap_words_of_mb max_heap_mb)
                ()
            in
            let probe = make_probe ~progress in
            Option.iter (fun p -> Obs.Probe.set_budget p budget) probe;
            match Cobegin_analysis.Race.find ~budget ?probe ctx with
            | result ->
                Format.printf "%a@." Cobegin_analysis.Race.pp
                  result.Cobegin_analysis.Race.races;
                Option.iter (fun path -> write_metrics path ~t0) metrics;
                report_status ~t0 result.Cobegin_analysis.Race.status;
                exit_code result.Cobegin_analysis.Race.status
            | exception e when structured_fault e <> None -> (
                match structured_fault e with
                | Some d ->
                    Format.eprintf "aborted by injected fault: %s@." d;
                    3
                | None -> assert false)))
  in
  Cmd.v
    (Cmd.info "races" ~doc:"Detect access anomalies by co-enabledness.")
    Term.(
      const run $ file_arg $ memory_model_arg $ max_configs_arg
      $ max_transitions_arg $ timeout_arg $ max_heap_mb_arg $ metrics_arg
      $ progress_arg $ chaos_arg)

let interfere_cmd =
  let no_locksets_arg =
    Arg.(
      value & flag
      & info [ "no-locksets" ]
          ~doc:
            "Disable the lock-invariant refinement: every shared access \
             sees full interference (the precision baseline).")
  in
  let check_soundness_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Also run the explicit full engine (under the same limits) \
             and verify that every concrete terminal store binding is \
             contained in the abstract results; prints a \
             \"soundness agreement\" line.  Containment failures make \
             the exit code 1.")
  in
  let run file domain no_locksets check max_configs max_transitions
      timeout_s max_heap_mb metrics progress chaos =
    match install_chaos chaos with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok () -> (
        match read_program file with
        | Error e ->
            Format.eprintf "%s@." e;
            1
        | Ok prog -> (
            let t0 = Unix.gettimeofday () in
            if metrics <> None then Obs.Metrics.set_enabled true;
            let mk_budget () =
              Budget.create ~max_configs ?max_transitions ?timeout_s
                ?max_heap_words:(Option.map heap_words_of_mb max_heap_mb)
                ()
            in
            let budget = mk_budget () in
            let probe = make_probe ~progress in
            Option.iter (fun p -> Obs.Probe.set_budget p budget) probe;
            match
              Interfere.run ~domain ~locksets:(not no_locksets) ~budget
                ?probe prog
            with
            | s ->
                Format.printf "%a@." Interfere.pp_summary s;
                let check_failed =
                  if not check then false
                  else begin
                    (* a fresh budget so the abstract run's spend does not
                       eat into the concrete reference run *)
                    let ctx = Cobegin_semantics.Step.make_ctx prog in
                    let r =
                      Cobegin_explore.Space.full ~budget:(mk_budget ())
                        ?probe ctx
                    in
                    if not (Budget.is_complete r.Cobegin_explore.Space.status)
                    then begin
                      Format.printf
                        "soundness agreement: skipped (explicit engine \
                         truncated)@.";
                      false
                    end
                    else begin
                      let bindings =
                        List.concat_map
                          (fun (c : Cobegin_semantics.Config.t) ->
                            Cobegin_semantics.Store.bindings
                              c.Cobegin_semantics.Config.store)
                          (r.Cobegin_explore.Space.final_configs
                          @ r.Cobegin_explore.Space.deadlock_configs
                          @ r.Cobegin_explore.Space.error_configs)
                      in
                      match s.Interfere.check bindings with
                      | [] ->
                          Format.printf
                            "soundness agreement: ok (%d concrete bindings \
                             contained)@."
                            (List.length bindings);
                          false
                      | violations ->
                          Format.printf
                            "soundness agreement: FAILED (%d of %d concrete \
                             bindings escape the abstraction)@."
                            (List.length violations)
                            (List.length bindings);
                          List.iter
                            (fun ((loc : Cobegin_semantics.Value.loc), v) ->
                              Format.printf "  site s%d offset %d: %a@."
                                loc.Cobegin_semantics.Value.l_site
                                loc.Cobegin_semantics.Value.l_off
                                Cobegin_semantics.Value.pp v)
                            violations;
                          true
                    end
                  end
                in
                Option.iter (fun path -> write_metrics path ~t0) metrics;
                report_status ~t0 s.Interfere.status;
                if check_failed then 1 else exit_code s.Interfere.status
            | exception e when structured_fault e <> None -> (
                match structured_fault e with
                | Some d ->
                    Format.eprintf "aborted by injected fault: %s@." d;
                    3
                | None -> assert false)))
  in
  Cmd.v
    (Cmd.info "interfere"
       ~doc:
         "Thread-modular interference analysis: per-process abstract \
          interpretation under a rely-guarantee interference map, \
          iterated to a fixpoint — polynomial where the explicit \
          engines enumerate interleavings.")
    Term.(
      const run $ file_arg $ domain_arg $ no_locksets_arg
      $ check_soundness_arg $ max_configs_arg $ max_transitions_arg
      $ timeout_arg $ max_heap_mb_arg $ metrics_arg $ progress_arg
      $ chaos_arg)

let parallel_cmd =
  let run file options =
    match read_program file with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok prog ->
        let t0 = Unix.gettimeofday () in
        let report = Pipeline.analyze ~options prog in
        let par = Pipeline.parallelization report in
        Format.printf "%a@." Cobegin_apps.Parallelize.pp_report par;
        List.iter
          (fun f ->
            Format.eprintf "%a@." Pipeline.pp_stage_failure f)
          report.Pipeline.stage_failures;
        report_recovery report;
        report_status ~t0 report.Pipeline.status;
        exit_code ~stage_failures:report.Pipeline.stage_failures
          ~degraded:report.Pipeline.degraded report.Pipeline.status
  in
  Cmd.v
    (Cmd.info "parallel"
       ~doc:"Shasha–Snir delay/parallelization report for segment programs.")
    Term.(const run $ file_arg $ options_term)

let examples_cmd =
  let run list name =
    if list then begin
      List.iter print_endline Cobegin_models.Corpus.names;
      0
    end
    else
      match name with
      | None ->
          Format.eprintf "missing example name; try --list@.";
          1
      | Some name -> (
          match Cobegin_models.Corpus.find name with
          | Some src ->
              print_string src;
              0
          | None ->
              Format.eprintf "unknown example %s; available: %s@." name
                (String.concat ", " Cobegin_models.Corpus.names);
              1)
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"Print the available example names, one per line.")
  in
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Example name (fig2, fig5, example8, ...).")
  in
  Cmd.v
    (Cmd.info "examples" ~doc:"Print a built-in example program.")
    Term.(const run $ list_arg $ name_arg)

(* --- serve / client: the persistent analysis daemon --- *)

module Serve = Cobegin_serve.Serve
module Sjson = Cobegin_serve.Sjson

let socket_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SOCKET" ~doc:"Path of the Unix-domain socket.")

let cache_cap_arg =
  Arg.(
    value & opt int 64
    & info [ "cache-cap" ] ~docv:"N"
        ~doc:
          "Capacity of the in-memory result cache, in entries (LRU \
           eviction; default 64).")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist cache entries under $(docv) (one atomically-written \
           file per run key) and consult them on a memory miss, so warm \
           results survive a daemon restart.")

let serve_cmd =
  let run socket cache_cap cache_dir jobs max_configs max_transitions
      timeout_s max_heap_mb retries log log_level trace chaos =
    match install_chaos chaos with
    | Error e ->
        Format.eprintf "%s@." e;
        1
    | Ok () -> (
        let log_oc = Option.map open_out log in
        if log_oc <> None then
          Obs.Journal.start ~threshold:log_level ?sink:log_oc ();
        let spans = Option.map (fun _ -> Obs.Span.create ()) trace in
        let finish code =
          (match (trace, spans) with
          | Some path, Some sp -> Obs.Span.write_trace sp path
          | _ -> ());
          Obs.Journal.stop ();
          Option.iter close_out log_oc;
          code
        in
        let defaults =
          {
            Pipeline.default_options with
            Pipeline.max_configs;
            max_transitions;
            timeout_s;
            max_heap_words = Option.map heap_words_of_mb max_heap_mb;
            retries = max 0 retries;
          }
        in
        let pool = max 1 jobs in
        let t =
          Serve.make
            {
              Serve.socket;
              capacity = cache_cap;
              cache_dir;
              pool;
              defaults;
              spans;
            }
        in
        Format.eprintf "serving on %s (pool %d, cache %d entries%s)@." socket
          pool (max 1 cache_cap)
          (match cache_dir with Some d -> ", disk tier " ^ d | None -> "");
        match Serve.run t with
        | () -> finish 0
        | exception Unix.Unix_error (err, fn, arg) ->
            Format.eprintf "serve: %s: %s %s@." fn (Unix.error_message err)
              arg;
            finish 1)
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains serving requests concurrently (default 1).  \
             Per-request exploration stays sequential: the daemon \
             parallelizes across requests, not within one.")
  in
  let retries_arg =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Supervisor retry cap for crashed stages (default 1); a \
             request may lower it, never raise it.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent analysis daemon: a Unix-domain-socket server \
          accepting newline-delimited JSON requests \
          ({\"program\":SRC,\"options\":{...}}, plus \
          {\"op\":\"ping\"|\"stats\"|\"shutdown\"}), replying with the \
          deterministic report JSON and its exit code.  Results are \
          memoized in a content-addressed cache keyed by program digest \
          × options fingerprint × memory model; repeated submissions are \
          cache hits with byte-identical reports.  The budget flags are \
          per-request defaults and caps: requests may lower them, never \
          raise them.")
    Term.(
      const run $ socket_arg $ cache_cap_arg $ cache_dir_arg $ jobs_arg
      $ max_configs_arg $ max_transitions_arg $ timeout_arg $ max_heap_mb_arg
      $ retries_arg $ log_arg $ log_level_arg $ trace_arg $ chaos_arg)

(* The request mirror of mk_options: every field spelled out, so the
   daemon's decoder (not this client) is the single cap-enforcement
   point. *)
let client_options_json (o : Pipeline.options) =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  Buffer.add_string buf
    (Printf.sprintf {|"engine":"%s"|} (Report.engine_name o.Pipeline.engine));
  Buffer.add_string buf
    (Printf.sprintf {|,"memory_model":"%s"|}
       (Cobegin_semantics.Step.model_name o.Pipeline.memory_model));
  Buffer.add_string buf
    (Printf.sprintf {|,"coarsen":%b,"inline":%b,"races":%b,"lint":%b|}
       o.Pipeline.coarsen o.Pipeline.inline o.Pipeline.find_races
       o.Pipeline.lint);
  Buffer.add_string buf
    (Printf.sprintf {|,"interfere":%b,"max_configs":%d|} o.Pipeline.interfere
       o.Pipeline.max_configs);
  Option.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf {|,"max_transitions":%d|} n))
    o.Pipeline.max_transitions;
  Option.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf {|,"timeout_s":%g|} s))
    o.Pipeline.timeout_s;
  Option.iter
    (fun w -> Buffer.add_string buf (Printf.sprintf {|,"max_heap_words":%d|} w))
    o.Pipeline.max_heap_words;
  Buffer.add_string buf
    (Printf.sprintf {|,"jobs":%d,"retries":%d}|} o.Pipeline.jobs
       o.Pipeline.retries);
  Buffer.contents buf

let client_cmd =
  let run socket file options ping stats shutdown =
    let op_request name = Printf.sprintf {|{"op":"%s"}|} name in
    try
      if ping then begin
        print_endline (Serve.request ~socket (op_request "ping"));
        0
      end
      else if stats then begin
        print_endline (Serve.request ~socket (op_request "stats"));
        0
      end
      else if shutdown then begin
        print_endline (Serve.request ~socket (op_request "shutdown"));
        0
      end
      else
        match file with
        | None ->
            Format.eprintf
              "missing FILE (or one of --ping/--stats/--shutdown)@.";
            1
        | Some path -> (
            let source =
              In_channel.with_open_bin path In_channel.input_all
            in
            let line =
              Serve.analyze_line
                ~options_json:(client_options_json options)
                source
            in
            let resp = Serve.request ~socket line in
            match Sjson.parse resp with
            | Error e ->
                Format.eprintf "client: bad response: %s@." e;
                1
            | Ok j -> (
                let code =
                  Option.bind (Sjson.member "exit_code" j) Sjson.to_int
                in
                match Sjson.member "ok" j with
                | Some (Sjson.Bool true) ->
                    (* the report bytes, verbatim, where analyze --json -
                       would print them; the cache verdict on stderr *)
                    Option.iter print_endline (Serve.response_report_raw resp);
                    Option.iter
                      (fun c -> Format.eprintf "cache: %s@." c)
                      (Option.bind (Sjson.member "cache" j) Sjson.to_string);
                    Option.value code ~default:0
                | _ ->
                    let msg =
                      match
                        Option.bind (Sjson.member "error" j) Sjson.to_string
                      with
                      | Some m -> m
                      | None -> resp
                    in
                    Format.eprintf "error: %s@." msg;
                    Option.value code ~default:1))
    with
    | Unix.Unix_error (err, _, _) ->
        Format.eprintf "client: cannot reach %s: %s@." socket
          (Unix.error_message err);
        1
    | End_of_file ->
        Format.eprintf "client: daemon hung up without replying@.";
        1
    | Sys_error e ->
        Format.eprintf "%s@." e;
        1
  in
  let file_arg =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"FILE" ~doc:"Source file to submit for analysis.")
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Liveness probe; print the reply.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the daemon's request and cache counters.")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the daemon to stop, then exit.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Submit one request to a running $(b,coanalyze serve) daemon.  \
          With $(i,FILE), submits it for analysis and prints the raw \
          report JSON on stdout (byte-identical to $(b,analyze --json -)) \
          with the cache verdict ($(b,cache: hit) or $(b,cache: miss)) on \
          stderr, exiting with the analysis's own exit code.")
    Term.(
      const run $ socket_arg $ file_arg $ options_term $ ping_arg
      $ stats_arg $ shutdown_arg)

let main_cmd =
  let doc =
    "static analysis of shared-memory cobegin programs by state-space \
     exploration, stubborn sets and abstract interpretation (Chow & \
     Harrison, ICPP 1992)"
  in
  Cmd.group
    (Cmd.info "coanalyze" ~version:"1.0.0" ~doc)
    [
      analyze_cmd;
      explore_cmd;
      races_cmd;
      interfere_cmd;
      parallel_cmd;
      examples_cmd;
      serve_cmd;
      client_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
